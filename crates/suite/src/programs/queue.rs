//! OpenBSD `TAILQ`-style queue programs (Table 1 row "OpenBSD Queue",
//! 6 programs): a `Queue` header with `first`/`last` over singly linked
//! cells.

use rand::Rng;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::program::{int_keys, ArgCand, Bench, Category};

/// A queue header with `n` cells (0 gives `first = last = nil`).
fn gen_queue_sized(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng, n: usize) -> Val {
    let qnode = Symbol::intern("QNode");
    let queue = Symbol::intern("Queue");
    let mut first = Val::Nil;
    let mut last = Val::Nil;
    let mut locs = Vec::new();
    for _ in 0..n {
        locs.push(heap.alloc(qnode, vec![Val::Nil, Val::Int(rng.gen_range(0..100))]));
    }
    for i in 0..n {
        if i + 1 < n {
            heap.live_mut(locs[i]).unwrap().fields[0] = Val::Addr(locs[i + 1]);
        }
    }
    if n > 0 {
        first = Val::Addr(locs[0]);
        last = Val::Addr(locs[n - 1]);
    }
    Val::Addr(heap.alloc(queue, vec![first, last]))
}

fn gen_queue_empty(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    gen_queue_sized(heap, rng, 0)
}

fn gen_queue_one(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    gen_queue_sized(heap, rng, 1)
}

fn gen_queue_ten(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    gen_queue_sized(heap, rng, 10)
}

fn queue_inputs() -> Vec<ArgCand> {
    vec![
        ArgCand::Custom(gen_queue_empty),
        ArgCand::Custom(gen_queue_one),
        ArgCand::Custom(gen_queue_ten),
    ]
}

const INIT: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn init() -> Queue* {
    return new Queue;
}
"#;

const INSERT_HD: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn insertHd(q: Queue*, k: int) {
    var n: QNode* = new QNode { next: q->first, data: k };
    q->first = n;
    if (q->last == null) {
        q->last = n;
    }
    return;
}
"#;

const INSERT_TL: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn insertTl(q: Queue*, k: int) {
    var n: QNode* = new QNode { data: k };
    if (q->last == null) {
        q->first = n;
        q->last = n;
        return;
    }
    q->last->next = n;
    q->last = n;
    return;
}
"#;

const INSERT_AFTER: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn insertAfter(q: Queue*, k: int) {
    // Insert after the first element (or at the head when empty).
    if (q->first == null) {
        var n: QNode* = new QNode { data: k };
        q->first = n;
        q->last = n;
        return;
    }
    var n2: QNode* = new QNode { next: q->first->next, data: k };
    q->first->next = n2;
    if (q->last == q->first) {
        q->last = n2;
    }
    return;
}
"#;

const RM_AFTER: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn rmAfter(q: Queue*) {
    if (q->first == null) {
        return;
    }
    var victim: QNode* = q->first->next;
    if (victim == null) {
        return;
    }
    q->first->next = victim->next;
    if (q->last == victim) {
        q->last = q->first;
    }
    free(victim);
    return;
}
"#;

const RM_HD: &str = r#"
struct QNode { next: QNode*; data: int; }
struct Queue { first: QNode*; last: QNode*; }
fn rmHd(q: Queue*) {
    var victim: QNode* = q->first;
    if (victim == null) {
        return;
    }
    q->first = victim->next;
    if (q->last == victim) {
        q->last = null;
    }
    free(victim);
    return;
}
"#;

/// The six OpenBSD queue benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new("queue/init", Category::OpenBsdQueue, INIT, "init", vec![])
            .spec("emp", &[(0, "res -> Queue{first: nil, last: nil}")]),
        Bench::new(
            "queue/insertAfter",
            Category::OpenBsdQueue,
            INSERT_AFTER,
            "insertAfter",
            vec![queue_inputs(), int_keys()],
        )
        .spec(
            "wq(q)",
            &[(
                2,
                "exists f, l. q -> Queue{first: f, last: l} * queue(f, l)",
            )],
        ),
        Bench::new(
            "queue/insertHd",
            Category::OpenBsdQueue,
            INSERT_HD,
            "insertHd",
            vec![queue_inputs(), int_keys()],
        )
        .spec(
            "wq(q)",
            &[(
                0,
                "exists f, l. q -> Queue{first: f, last: l} * queue(f, l)",
            )],
        ),
        Bench::new(
            "queue/insertTl",
            Category::OpenBsdQueue,
            INSERT_TL,
            "insertTl",
            vec![queue_inputs(), int_keys()],
        )
        .spec(
            "wq(q)",
            &[
                (
                    0,
                    "exists f, d. q -> Queue{first: f, last: f} * f -> QNode{next: nil, data: d}",
                ),
                (
                    1,
                    "exists f, l. q -> Queue{first: f, last: l} * queue(f, l)",
                ),
            ],
        ),
        Bench::new(
            "queue/rmAfter",
            Category::OpenBsdQueue,
            RM_AFTER,
            "rmAfter",
            vec![queue_inputs()],
        )
        .spec("wq(q)", &[(2, "wq(q)")])
        .frees(),
        Bench::new(
            "queue/rmHd",
            Category::OpenBsdQueue,
            RM_HD,
            "rmHd",
            vec![queue_inputs()],
        )
        .spec("wq(q)", &[(1, "wq(q)")])
        .frees(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 6);
    }
}
