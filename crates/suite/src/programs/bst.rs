//! Binary-search-tree programs (Table 1 row "Binary Search Tree",
//! 5 programs; `rmRoot` carries the seeded segfault `∗`).

use sling_lang::TreeKind;

use crate::predicates::tnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, BugKind, Category};

fn bst(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: tnode_layout(),
        kind: TreeKind::Bst,
        size,
    }
}

const DEL: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn findMin(t: TNode*) -> TNode* {
    if (t->left == null) {
        return t;
    }
    return findMin(t->left);
}
fn del(t: TNode*, k: int) -> TNode* {
    if (t == null) {
        return null;
    }
    if (k < t->data) {
        t->left = del(t->left, k);
        return t;
    }
    if (k > t->data) {
        t->right = del(t->right, k);
        return t;
    }
    if (t->left == null) {
        return t->right;
    }
    if (t->right == null) {
        return t->left;
    }
    var m: TNode* = findMin(t->right);
    t->data = m->data;
    t->right = del(t->right, m->data);
    return t;
}
"#;

const FIND_ITER: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn findIter(t: TNode*, k: int) -> TNode* {
    while @walk (t != null && t->data != k) {
        if (k < t->data) {
            t = t->left;
        } else {
            t = t->right;
        }
    }
    return t;
}
"#;

const FIND: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn find(t: TNode*, k: int) -> TNode* {
    if (t == null) {
        return null;
    }
    if (t->data == k) {
        return t;
    }
    if (k < t->data) {
        return find(t->left, k);
    }
    return find(t->right, k);
}
"#;

const INSERT: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn insert(t: TNode*, k: int) -> TNode* {
    if (t == null) {
        return new TNode { data: k };
    }
    if (k < t->data) {
        t->left = insert(t->left, k);
    } else {
        t->right = insert(t->right, k);
    }
    return t;
}
"#;

/// Seeded bug: removes the root by promoting the right child without a
/// null check — dereferences null immediately for every input.
const RM_ROOT_BUG: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn rmRoot(t: TNode*) -> TNode* {
    // BUG: no null checks at all.
    var r: TNode* = t->right;
    var l: TNode* = t->left;
    var m: TNode* = r;
    while (m->left != null) {
        m = m->left;
    }
    m->left = l;
    free(t);
    return r;
}
"#;

/// The five BST benchmarks.
pub fn benches() -> Vec<Bench> {
    let with_key = || vec![nil_or(bst), int_keys()];
    vec![
        Bench::new(
            "bst/del",
            Category::BinarySearchTree,
            DEL,
            "del",
            with_key(),
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[(1, "tree(t) & res == t")],
        ),
        Bench::new(
            "bst/findIter",
            Category::BinarySearchTree,
            FIND_ITER,
            "findIter",
            with_key(),
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[(0, "tree(t) & res == t")],
        )
        .loop_inv("walk", "tree(t)"),
        Bench::new(
            "bst/find",
            Category::BinarySearchTree,
            FIND,
            "find",
            with_key(),
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[
                (0, "emp & t == nil & res == nil"),
                (1, "tree(t) & res == t"),
            ],
        ),
        Bench::new(
            "bst/insert",
            Category::BinarySearchTree,
            INSERT,
            "insert",
            with_key(),
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[
                (
                    0,
                    "exists d. res -> TNode{left: nil, right: nil, data: d} & t == nil",
                ),
                (1, "tree(t) & res == t"),
            ],
        ),
        Bench::new(
            "bst/rmRoot",
            Category::BinarySearchTree,
            RM_ROOT_BUG,
            "rmRoot",
            vec![nil_or(bst)],
        )
        .spec("exists lo, hi. bst(t, lo, hi)", &[(0, "tree(res)")])
        .bug(BugKind::Segfault),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 5);
    }
}
