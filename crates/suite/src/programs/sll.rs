//! Standard singly-linked-list programs (Table 1 row "SLL", 8 programs).

use sling_lang::DataOrder;

use crate::predicates::snode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn list(size: usize) -> ArgCand {
    ArgCand::List {
        layout: snode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

fn one_list() -> Vec<Vec<ArgCand>> {
    vec![nil_or(list)]
}

fn list_and_key() -> Vec<Vec<ArgCand>> {
    vec![nil_or(list), int_keys()]
}

/// The eight SLL benchmarks.
#[allow(clippy::vec_init_then_push)]
pub fn benches() -> Vec<Bench> {
    let mut out = Vec::new();

    out.push(
        Bench::new(
            "sll/append",
            Category::Sll,
            concat_src(),
            "append",
            vec![nil_or(list), nil_or(list)],
        )
        .spec("sll(x) * sll(y)", &[(0, "sll(res)"), (1, "sll(res)")]),
    );

    out.push(
        Bench::new(
            "sll/delAll",
            Category::Sll,
            del_all_src(),
            "delAll",
            one_list(),
        )
        .spec("sll(x)", &[(0, "emp")])
        .loop_inv("inv", "sll(x)")
        .frees(),
    );

    out.push(
        Bench::new(
            "sll/find",
            Category::Sll,
            find_src(),
            "find",
            list_and_key(),
        )
        .spec("sll(x)", &[(0, "emp"), (1, "sll(res)"), (2, "sll(x)")]),
    );

    out.push(
        Bench::new(
            "sll/insert",
            Category::Sll,
            insert_src(),
            "insert",
            list_and_key(),
        )
        .spec("sll(x)", &[(1, "sll(res)")]),
    );

    out.push(
        Bench::new(
            "sll/reverse",
            Category::Sll,
            reverse_src(),
            "reverse",
            one_list(),
        )
        .spec("sll(x)", &[(0, "sll(res) & x == nil")])
        .loop_inv("inv", "sll(x) * sll(r)"),
    );

    out.push(
        Bench::new(
            "sll/insertFront",
            Category::Sll,
            insert_front_src(),
            "insertFront",
            list_and_key(),
        )
        .spec(
            "sll(x)",
            &[(0, "exists u. res -> SNode{next: x, data: k} * sll(x)")],
        ),
    );

    out.push(
        Bench::new(
            "sll/insertBack",
            Category::Sll,
            insert_back_src(),
            "insertBack",
            list_and_key(),
        )
        .spec("sll(x)", &[(0, "sll(res)"), (1, "sll(res)")]),
    );

    out.push(
        Bench::new("sll/copy", Category::Sll, copy_src(), "copy", one_list()).spec(
            "sll(x)",
            &[(0, "emp & x == nil & res == nil"), (1, "sll(x) * sll(res)")],
        ),
    );

    out
}

fn concat_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn append(x: SNode*, y: SNode*) -> SNode* {
    if (x == null) {
        return y;
    }
    x->next = append(x->next, y);
    return x;
}
"#
    )
}

fn del_all_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn delAll(x: SNode*) {
    while @inv (x != null) {
        var t: SNode* = x->next;
        free(x);
        x = t;
    }
    return;
}
"#
    )
}

fn find_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn find(x: SNode*, k: int) -> SNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        return x;
    }
    return find(x->next, k);
}
"#
    )
}

fn insert_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn insert(x: SNode*, k: int) -> SNode* {
    var n: SNode* = new SNode { data: k };
    if (x == null) {
        return n;
    }
    n->next = x->next;
    x->next = n;
    return x;
}
"#
    )
}

fn reverse_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn reverse(x: SNode*) -> SNode* {
    var r: SNode* = null;
    while @inv (x != null) {
        var t: SNode* = x->next;
        x->next = r;
        r = x;
        x = t;
    }
    return r;
}
"#
    )
}

fn insert_front_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn insertFront(x: SNode*, k: int) -> SNode* {
    var n: SNode* = new SNode { next: x, data: k };
    return n;
}
"#
    )
}

fn insert_back_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn insertBack(x: SNode*, k: int) -> SNode* {
    if (x == null) {
        return new SNode { data: k };
    }
    x->next = insertBack(x->next, k);
    return x;
}
"#
    )
}

fn copy_src() -> &'static str {
    concat!(
        "struct SNode { next: SNode*; data: int; }\n",
        r#"
fn copy(x: SNode*) -> SNode* {
    if (x == null) {
        return null;
    }
    var n: SNode* = new SNode { data: x->data };
    n->next = copy(x->next);
    return n;
}
"#
    )
}

// Re-export the header for the module tests.
#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn all_sll_sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
            assert!(
                p.func(sling_logic::Symbol::intern(b.target)).is_some(),
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 8);
    }
}
