//! Doubly-linked-list programs (Table 1 row "DLL", 12 programs),
//! including the paper's running example `concat` (Figure 1).

use sling_lang::DataOrder;

use crate::predicates::dnode_layout;
use crate::program::{int_keys, nil_or, nonnil, ArgCand, Bench, Category};

fn dll(size: usize) -> ArgCand {
    ArgCand::List {
        layout: dnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

/// The paper's Figure 1 (with a data payload, as in VCDryad).
const CONCAT: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn concat(x: DNode*, y: DNode*) -> DNode* {
    @L1;
    if (x == null) {
        @L2;
        return y;
    } else {
        var tmp: DNode* = concat(x->next, y);
        x->next = tmp;
        if (tmp != null) {
            tmp->prev = x;
        }
        @L3;
        return x;
    }
}
"#;

const APPEND: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn append(x: DNode*, k: int) -> DNode* {
    if (x == null) {
        return new DNode { data: k };
    }
    var t: DNode* = append(x->next, k);
    x->next = t;
    t->prev = x;
    return x;
}
"#;

const MELD: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn meld(x: DNode*, y: DNode*) -> DNode* {
    if (x == null) {
        return y;
    }
    if (y == null) {
        return x;
    }
    var t: DNode* = x;
    while @tail (t->next != null) {
        t = t->next;
    }
    t->next = y;
    y->prev = t;
    return x;
}
"#;

const DEL_ALL: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn delAll(x: DNode*) {
    while @inv (x != null) {
        var t: DNode* = x->next;
        free(x);
        x = t;
    }
    return;
}
"#;

const INSERT_BACK: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn insertBack(x: DNode*, k: int) -> DNode* {
    var n: DNode* = new DNode { data: k };
    if (x == null) {
        return n;
    }
    var t: DNode* = x;
    while @tail (t->next != null) {
        t = t->next;
    }
    t->next = n;
    n->prev = t;
    return x;
}
"#;

const INSERT_FRONT: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn insertFront(x: DNode*, k: int) -> DNode* {
    var n: DNode* = new DNode { next: x, data: k };
    if (x != null) {
        x->prev = n;
    }
    return n;
}
"#;

const MID_INSERT: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midInsert(x: DNode*, k: int) -> DNode* {
    if (x == null) {
        return new DNode { data: k };
    }
    var n: DNode* = new DNode { data: k };
    n->next = x->next;
    n->prev = x;
    if (x->next != null) {
        x->next->prev = n;
    }
    x->next = n;
    return x;
}
"#;

const MID_DEL: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midDel(x: DNode*) -> DNode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return x;
    }
    var victim: DNode* = x->next;
    x->next = victim->next;
    if (victim->next != null) {
        victim->next->prev = x;
    }
    free(victim);
    return x;
}
"#;

/// Buggy mid-delete: forgets to fix the back pointer, leaving the list
/// ill-formed (it still runs — the bug shows as a *weaker* invariant).
const MID_DEL_ERROR: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midDelError(x: DNode*) -> DNode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return x;
    }
    var victim: DNode* = x->next;
    x->next = victim->next;
    // BUG: victim->next->prev still points at victim.
    free(victim);
    return x;
}
"#;

const MID_DEL_HD: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midDelHd(x: DNode*) -> DNode* {
    if (x == null) {
        return null;
    }
    var rest: DNode* = x->next;
    if (rest != null) {
        rest->prev = null;
    }
    free(x);
    return rest;
}
"#;

const MID_DEL_STAR: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midDelStar(x: DNode*) {
    if (x == null) {
        return;
    }
    midDelStar(x->next);
    free(x);
    return;
}
"#;

const MID_DEL_MID: &str = r#"
struct DNode { next: DNode*; prev: DNode*; data: int; }
fn midDelMid(x: DNode*, k: int) -> DNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var rest: DNode* = x->next;
        if (rest != null) {
            rest->prev = x->prev;
        }
        if (x->prev != null) {
            x->prev->next = rest;
        }
        free(x);
        return rest;
    }
    x->next = midDelMid(x->next, k);
    if (x->next != null) {
        x->next->prev = x;
    }
    return x;
}
"#;

/// The twelve DLL benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(dll)];
    let with_key = || vec![nil_or(dll), int_keys()];
    vec![
        Bench::new(
            "dll/concat",
            Category::Dll,
            CONCAT,
            "concat",
            vec![nil_or(dll), nil_or(dll)],
        )
        // The paper's §2 spec, with the postcondition in the
        // three-segment form SLING itself derives (F'_L3; the paper
        // notes it is *stronger* than the two-segment textbook post).
        .spec(
            "exists p, u, v. dll(x, p, u, nil) * dll(y, nil, v, nil)",
            &[
                (0, "exists v. dll(y, nil, v, nil) & x == nil & res == y"),
                (
                    1,
                    "exists p, u, t, q, w, z, v. dll(x, p, u, t) * dll(t, q, w, y) \
                         * dll(y, z, v, nil) & res == x",
                ),
            ],
        ),
        Bench::new("dll/append", Category::Dll, APPEND, "append", with_key()).spec(
            "exists p, u. dll(x, p, u, nil)",
            &[
                (
                    0,
                    "exists d. res -> DNode{next: nil, prev: nil, data: d} & x == nil",
                ),
                (1, "exists p, u. dll(x, p, u, nil) & res == x"),
            ],
        ),
        Bench::new(
            "dll/meld",
            Category::Dll,
            MELD,
            "meld",
            vec![nil_or(dll), nil_or(dll)],
        )
        .spec(
            "exists p, u, q, v. dll(x, p, u, nil) * dll(y, q, v, nil)",
            &[
                (0, "exists q, v. dll(y, q, v, nil) & x == nil & res == y"),
                (1, "exists p, u. dll(x, p, u, nil) & y == nil & res == x"),
                (
                    2,
                    "exists u, v. dll(x, nil, u, y) * dll(y, u, v, nil) & res == x",
                ),
            ],
        )
        .loop_inv(
            "tail",
            "exists p, u, q, v. dll(x, p, u, nil) * dll(y, q, v, nil)",
        ),
        Bench::new("dll/delAll", Category::Dll, DEL_ALL, "delAll", one())
            .spec("exists p, u. dll(x, p, u, nil)", &[(0, "emp")])
            .frees(),
        Bench::new(
            "dll/insertBack",
            Category::Dll,
            INSERT_BACK,
            "insertBack",
            with_key(),
        )
        .spec(
            "exists p, u. dll(x, p, u, nil)",
            &[
                (
                    0,
                    "exists d. res -> DNode{next: nil, prev: nil, data: d} & x == nil",
                ),
                (1, "exists p, u. dll(x, p, u, nil) & res == x"),
            ],
        ),
        Bench::new(
            "dll/insertFront",
            Category::Dll,
            INSERT_FRONT,
            "insertFront",
            with_key(),
        )
        .spec(
            "exists p, u. dll(x, p, u, nil)",
            &[(0, "exists u. dll(res, nil, u, nil)")],
        ),
        Bench::new(
            "dll/midInsert",
            Category::Dll,
            MID_INSERT,
            "midInsert",
            with_key(),
        )
        .spec(
            "exists p, u. dll(x, p, u, nil)",
            &[
                (
                    0,
                    "exists d. res -> DNode{next: nil, prev: nil, data: d} & x == nil",
                ),
                (1, "exists u. dll(x, nil, u, nil) & res == x"),
            ],
        ),
        Bench::new(
            "dll/midDel",
            Category::Dll,
            MID_DEL,
            "midDel",
            vec![nonnil(dll)],
        )
        .spec(
            "exists p, u. dll(x, p, u, nil)",
            &[(
                1,
                "exists d. x -> DNode{next: nil, prev: nil, data: d} & res == x",
            )],
        )
        .frees(),
        Bench::new(
            "dll/midDelError",
            Category::Dll,
            MID_DEL_ERROR,
            "midDelError",
            vec![nonnil(dll)],
        )
        .frees(),
        Bench::new("dll/midDelHd", Category::Dll, MID_DEL_HD, "midDelHd", one())
            .spec(
                "exists p, u. dll(x, p, u, nil)",
                &[(0, "emp & x == nil & res == nil")],
            )
            .frees(),
        Bench::new(
            "dll/midDelStar",
            Category::Dll,
            MID_DEL_STAR,
            "midDelStar",
            one(),
        )
        .spec("exists p, u. dll(x, p, u, nil)", &[(1, "emp")])
        .frees(),
        Bench::new(
            "dll/midDelMid",
            Category::Dll,
            MID_DEL_MID,
            "midDelMid",
            with_key(),
        )
        .frees(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 12);
    }
}
