//! GRASShopper singly-linked-list programs, iterative versions (Table 1
//! row "GRASShopper_SLL (Iterative)", 8 programs).

use sling_lang::DataOrder;

use crate::predicates::hnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn hlist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: hnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CONCAT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn concat(a: HNode*, b: HNode*) -> HNode* {
    if (a == null) {
        return b;
    }
    var t: HNode* = a;
    while @walk (t->next != null) {
        t = t->next;
    }
    t->next = b;
    return a;
}
"#;

const COPY: &str = r#"
struct HNode { next: HNode*; data: int; }
fn copy(x: HNode*) -> HNode* {
    var head: HNode* = null;
    var tail: HNode* = null;
    while @inv (x != null) {
        var n: HNode* = new HNode { data: x->data };
        if (tail == null) {
            head = n;
        } else {
            tail->next = n;
        }
        tail = n;
        x = x->next;
    }
    return head;
}
"#;

const DISPOSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn dispose(x: HNode*) {
    while @inv (x != null) {
        var t: HNode* = x->next;
        free(x);
        x = t;
    }
    return;
}
"#;

const FILTER: &str = r#"
struct HNode { next: HNode*; data: int; }
fn filter(x: HNode*, k: int) -> HNode* {
    var head: HNode* = x;
    var prev: HNode* = null;
    var cur: HNode* = x;
    while @inv (cur != null) {
        var t: HNode* = cur->next;
        if (cur->data < k) {
            if (prev == null) {
                head = t;
            } else {
                prev->next = t;
            }
            free(cur);
        } else {
            prev = cur;
        }
        cur = t;
    }
    return head;
}
"#;

const INSERT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn insert(x: HNode*, k: int) -> HNode* {
    var n: HNode* = new HNode { data: k };
    if (x == null) {
        return n;
    }
    var cur: HNode* = x;
    while @walk (cur->next != null) {
        cur = cur->next;
    }
    cur->next = n;
    return x;
}
"#;

const RM: &str = r#"
struct HNode { next: HNode*; data: int; }
fn rm(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var rest: HNode* = x->next;
        free(x);
        return rest;
    }
    var prev: HNode* = x;
    var cur: HNode* = x->next;
    while @scan (cur != null && cur->data != k) {
        prev = cur;
        cur = cur->next;
    }
    if (cur != null) {
        prev->next = cur->next;
        free(cur);
    }
    return x;
}
"#;

const REVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn reverse(x: HNode*) -> HNode* {
    var r: HNode* = null;
    while @inv (x != null) {
        var t: HNode* = x->next;
        x->next = r;
        r = x;
        x = t;
    }
    return r;
}
"#;

const TRAVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn traverse(x: HNode*) -> int {
    var n: int = 0;
    while @inv (x != null) {
        n = n + 1;
        x = x->next;
    }
    return n;
}
"#;

/// The eight iterative GRASShopper SLL benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(hlist)];
    let with_key = || vec![nil_or(hlist), int_keys()];
    vec![
        Bench::new(
            "gh_sll_iter/concat",
            Category::GrasshopperSllIter,
            CONCAT,
            "concat",
            vec![nil_or(hlist), nil_or(hlist)],
        )
        .spec(
            "hsll(a) * hsll(b)",
            &[
                (0, "hsll(b) & a == nil & res == b"),
                (1, "hsll(a) & res == a"),
            ],
        )
        .loop_inv("walk", "hsll(a) * hsll(b)"),
        Bench::new(
            "gh_sll_iter/copy",
            Category::GrasshopperSllIter,
            COPY,
            "copy",
            one(),
        )
        .spec("hsll(x)", &[(0, "hsll(x) * hsll(res) & x == nil")])
        .loop_inv("inv", "hsll(x)"),
        Bench::new(
            "gh_sll_iter/dispose",
            Category::GrasshopperSllIter,
            DISPOSE,
            "dispose",
            one(),
        )
        .spec("hsll(x)", &[(0, "emp")])
        .frees(),
        Bench::new(
            "gh_sll_iter/filter",
            Category::GrasshopperSllIter,
            FILTER,
            "filter",
            with_key(),
        )
        .spec("hsll(x)", &[(0, "hsll(res)")])
        .frees(),
        Bench::new(
            "gh_sll_iter/insert",
            Category::GrasshopperSllIter,
            INSERT,
            "insert",
            with_key(),
        )
        .spec(
            "hsll(x)",
            &[
                (0, "exists d. res -> HNode{next: nil, data: d} & x == nil"),
                (1, "hsll(x) & res == x"),
            ],
        )
        .loop_inv("walk", "hsll(x)"),
        Bench::new(
            "gh_sll_iter/rm",
            Category::GrasshopperSllIter,
            RM,
            "rm",
            with_key(),
        )
        .spec("hsll(x)", &[(0, "emp & x == nil & res == nil")])
        .frees(),
        Bench::new(
            "gh_sll_iter/reverse",
            Category::GrasshopperSllIter,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("hsll(x)", &[(0, "hsll(res) & x == nil")])
        .loop_inv("inv", "hsll(x) * hsll(r)"),
        Bench::new(
            "gh_sll_iter/traverse",
            Category::GrasshopperSllIter,
            TRAVERSE,
            "traverse",
            one(),
        )
        .spec("hsll(x)", &[(0, "emp & x == nil")])
        .loop_inv("inv", "hsll(x)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 8);
    }
}
