//! Binomial-heap programs (Table 1 row "Binomial Heap", 2 programs):
//! sibling-linked root lists of child-linked binomial trees.

use rand::Rng;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::program::{ArgCand, Bench, Category};

/// Builds a binomial tree of the given order rooted at `key_floor`.
fn gen_btree(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng, order: u32, key_floor: i64) -> Val {
    let b = Symbol::intern("BNode");
    let key = key_floor + rng.gen_range(0i64..5);
    // Children of order k tree: trees of orders k-1 .. 0, sibling-linked.
    let mut child = Val::Nil;
    for o in 0..order {
        let c = gen_btree(heap, rng, o, key);
        if let Val::Addr(cl) = c {
            heap.live_mut(cl).unwrap().fields[1] = child;
            child = c;
        }
    }
    Val::Addr(heap.alloc(
        b,
        vec![child, Val::Nil, Val::Int(order as i64), Val::Int(key)],
    ))
}

/// A root list of binomial trees of increasing order.
fn gen_bheap(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    let mut head = Val::Nil;
    for order in (0..3u32).rev() {
        let t = gen_btree(heap, rng, order, 0);
        if let Val::Addr(l) = t {
            heap.live_mut(l).unwrap().fields[1] = head;
            head = t;
        }
    }
    head
}

fn heap_inputs() -> Vec<ArgCand> {
    vec![ArgCand::Nil, ArgCand::Custom(gen_bheap)]
}

const FIND_MIN: &str = r#"
struct BNode { child: BNode*; sibling: BNode*; degree: int; key: int; }
fn findMin(h: BNode*) -> BNode* {
    if (h == null) {
        return null;
    }
    var best: BNode* = h;
    var cur: BNode* = h->sibling;
    while @scan (cur != null) {
        if (cur->key < best->key) {
            best = cur;
        }
        cur = cur->sibling;
    }
    return best;
}
"#;

const MERGE: &str = r#"
struct BNode { child: BNode*; sibling: BNode*; degree: int; key: int; }
fn merge(a: BNode*, b: BNode*) -> BNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->degree <= b->degree) {
        a->sibling = merge(a->sibling, b);
        return a;
    }
    b->sibling = merge(a, b->sibling);
    return b;
}
"#;

/// The two binomial-heap benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "binomial/findMin",
            Category::BinomialHeap,
            FIND_MIN,
            "findMin",
            vec![heap_inputs()],
        )
        .spec(
            "bheap(h)",
            &[(0, "emp & h == nil & res == nil"), (1, "bheap(h)")],
        )
        .loop_inv("scan", "bheap(h)"),
        Bench::new(
            "binomial/merge",
            Category::BinomialHeap,
            MERGE,
            "merge",
            vec![heap_inputs(), heap_inputs()],
        )
        .spec(
            "bheap(a) * bheap(b)",
            &[
                (0, "bheap(b) & a == nil & res == b"),
                (1, "bheap(a) & b == nil & res == a"),
                (2, "bheap(a) & res == a"),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 2);
    }
}
