//! AFWP programs (Itzhaky et al., "Effectively-Propositional Reasoning
//! about Reachability in Linked Data Structures"): Table 1 rows
//! "AFWP_SLL" (11 programs; `del` is `†`) and "AFWP_DLL" (2 programs —
//! `dll_fix` is the §5.4 bug-explanation example with its guard
//! commented out, and `dll_splice`).

use sling_lang::DataOrder;

use crate::predicates::{adnode_layout, anode_layout};
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn alist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: anode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

/// A singly linked chain of `AdNode`s whose `prev` pointers are all nil —
/// the broken input `dll_fix` repairs.
fn adlist_broken(size: usize) -> ArgCand {
    ArgCand::List {
        layout: sling_lang::ListLayout {
            prev: None,
            ..adnode_layout()
        },
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CREATE: &str = r#"
struct ANode { next: ANode*; data: int; }
fn create(n: int) -> ANode* {
    var x: ANode* = null;
    while @inv (n > 0) {
        x = new ANode { next: x, data: n };
        n = n - 1;
    }
    return x;
}
"#;

const DEL_ALL: &str = r#"
struct ANode { next: ANode*; data: int; }
fn delAll(x: ANode*) {
    while @inv (x != null) {
        var t: ANode* = x->next;
        free(x);
        x = t;
    }
    return;
}
"#;

const FIND: &str = r#"
struct ANode { next: ANode*; data: int; }
fn find(x: ANode*, k: int) -> ANode* {
    while @scan (x != null && x->data != k) {
        x = x->next;
    }
    return x;
}
"#;

const LAST: &str = r#"
struct ANode { next: ANode*; data: int; }
fn last(x: ANode*) -> ANode* {
    if (x == null) {
        return null;
    }
    while @walk (x->next != null) {
        x = x->next;
    }
    return x;
}
"#;

const REVERSE: &str = r#"
struct ANode { next: ANode*; data: int; }
fn reverse(x: ANode*) -> ANode* {
    var r: ANode* = null;
    while @inv (x != null) {
        var t: ANode* = x->next;
        x->next = r;
        r = x;
        x = t;
    }
    return r;
}
"#;

const ROTATE: &str = r#"
struct ANode { next: ANode*; data: int; }
fn rotate(x: ANode*) -> ANode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return x;
    }
    var second: ANode* = x->next;
    var t: ANode* = second;
    while @walk (t->next != null) {
        t = t->next;
    }
    x->next = null;
    t->next = x;
    return second;
}
"#;

const SWAP: &str = r#"
struct ANode { next: ANode*; data: int; }
fn swap(x: ANode*) -> ANode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return x;
    }
    var second: ANode* = x->next;
    x->next = second->next;
    second->next = x;
    return second;
}
"#;

const INSERT: &str = r#"
struct ANode { next: ANode*; data: int; }
fn insert(x: ANode*, k: int) -> ANode* {
    if (x == null) {
        return new ANode { data: k };
    }
    var cur: ANode* = x;
    while @scan (cur->next != null && cur->next->data < k) {
        cur = cur->next;
    }
    var n: ANode* = new ANode { next: cur->next, data: k };
    cur->next = n;
    return x;
}
"#;

/// `†`: the delete walk visits its loop head once per node per test, and
/// the checker struggles with the resulting trace count at the loop.
const DEL: &str = r#"
struct ANode { next: ANode*; data: int; }
fn del(x: ANode*, k: int) -> ANode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var rest: ANode* = x->next;
        free(x);
        return rest;
    }
    var prev: ANode* = x;
    var cur: ANode* = x->next;
    while @scan (cur != null) {
        if (cur->data == k) {
            prev->next = cur->next;
            free(cur);
            return x;
        }
        prev = cur;
        cur = cur->next;
    }
    return x;
}
"#;

const FILTER: &str = r#"
struct ANode { next: ANode*; data: int; }
fn filter(x: ANode*, k: int) -> ANode* {
    if (x == null) {
        return null;
    }
    var rest: ANode* = filter(x->next, k);
    if (x->data < k) {
        free(x);
        return rest;
    }
    x->next = rest;
    return x;
}
"#;

const MERGE: &str = r#"
struct ANode { next: ANode*; data: int; }
fn merge(a: ANode*, b: ANode*) -> ANode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data <= b->data) {
        a->next = merge(a->next, b);
        return a;
    }
    b->next = merge(a, b->next);
    return b;
}
"#;

/// The §5.4 `dll_fix`: walks a singly linked chain turning it into a
/// doubly linked list. The guard (and bookkeeping) marked BUG below is
/// "commented out" exactly as the paper found it, so `j` and `k` stay nil
/// and SLING's loop invariant says `k == nil` — the opposite of the
/// expected `∃. sll(i) * dll(j,...,k,...) * dll(k,...,nil)`.
const DLL_FIX_BUG: &str = r#"
struct AdNode { next: AdNode*; prev: AdNode*; }
fn dll_fix(h: AdNode*) {
    var i: AdNode* = h;
    var j: AdNode* = null;
    var k: AdNode* = null;
    while @inv (i != null) {
        var t: AdNode* = i->next;
        i->next = k;
        i->prev = null;
        // if (k != null) { k->prev = i; }      // BUG: commented out
        // j = k;                               // BUG: commented out
        // k = i;                               // BUG: commented out
        i = t;
    }
    return;
}
"#;

const DLL_SPLICE: &str = r#"
struct AdNode { next: AdNode*; prev: AdNode*; }
fn dll_splice(a: AdNode*, b: AdNode*) -> AdNode* {
    if (a == null) {
        return b;
    }
    var t: AdNode* = a;
    while @walk (t->next != null) {
        t = t->next;
    }
    t->next = b;
    if (b != null) {
        b->prev = t;
    }
    return a;
}
"#;

/// The eleven AFWP_SLL benchmarks.
pub fn sll_benches() -> Vec<Bench> {
    let one = || vec![nil_or(alist)];
    let with_key = || vec![nil_or(alist), int_keys()];
    vec![
        Bench::new(
            "afwp_sll/create",
            Category::AfwpSll,
            CREATE,
            "create",
            vec![vec![ArgCand::Int(0), ArgCand::Int(5), ArgCand::Int(10)]],
        )
        .spec("emp", &[(0, "asll(res)")])
        .loop_inv("inv", "asll(x)"),
        Bench::new(
            "afwp_sll/delAll",
            Category::AfwpSll,
            DEL_ALL,
            "delAll",
            one(),
        )
        .spec("asll(x)", &[(0, "emp")])
        .frees(),
        Bench::new("afwp_sll/find", Category::AfwpSll, FIND, "find", with_key())
            .spec("asll(x)", &[(0, "asll(x) & res == x")])
            .loop_inv("scan", "asll(x)"),
        Bench::new("afwp_sll/last", Category::AfwpSll, LAST, "last", one())
            .spec(
                "asll(x)",
                &[
                    (0, "emp & x == nil & res == nil"),
                    (1, "exists d. x -> ANode{next: nil, data: d} & res == x"),
                ],
            )
            .loop_inv("walk", "asll(x)"),
        Bench::new(
            "afwp_sll/reverse",
            Category::AfwpSll,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("asll(x)", &[(0, "asll(res) & x == nil")])
        .loop_inv("inv", "asll(x) * asll(r)"),
        Bench::new(
            "afwp_sll/rotate",
            Category::AfwpSll,
            ROTATE,
            "rotate",
            one(),
        )
        .spec("asll(x)", &[(2, "asll(res)")])
        .loop_inv("walk", "asll(x)"),
        Bench::new("afwp_sll/swap", Category::AfwpSll, SWAP, "swap", one())
            .spec("asll(x)", &[(2, "asll(res)")]),
        Bench::new(
            "afwp_sll/insert",
            Category::AfwpSll,
            INSERT,
            "insert",
            with_key(),
        )
        .spec("asll(x)", &[(1, "asll(x) & res == x")])
        .loop_inv("scan", "asll(x)"),
        Bench::new("afwp_sll/del", Category::AfwpSll, DEL, "del", with_key())
            .spec("asll(x)", &[(0, "emp & x == nil & res == nil")])
            .frees()
            .hard_to_reach(),
        Bench::new(
            "afwp_sll/filter",
            Category::AfwpSll,
            FILTER,
            "filter",
            with_key(),
        )
        .spec("asll(x)", &[(0, "emp & x == nil & res == nil")])
        .frees(),
        Bench::new(
            "afwp_sll/merge",
            Category::AfwpSll,
            MERGE,
            "merge",
            vec![nil_or(alist), nil_or(alist)],
        )
        .spec(
            "asll(a) * asll(b)",
            &[
                (0, "asll(b) & a == nil & res == b"),
                (1, "asll(a) & b == nil & res == a"),
            ],
        ),
    ]
}

/// The two AFWP_DLL benchmarks.
pub fn dll_benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "afwp_dll/dll_fix",
            Category::AfwpDll,
            DLL_FIX_BUG,
            "dll_fix",
            vec![nil_or(adlist_broken)],
        )
        // The *expected* invariant (with the guard restored); the
        // buggy binary can only produce `k == nil`, so Table 2 counts
        // this as found-by-neither.
        .loop_inv(
            "inv",
            "exists u1, u2, u3, u4. adsll(i) * adll(j, u1, k, u2) * adll(k, u3, u4, nil)",
        )
        .spec("adsll(h)", &[(0, "emp & h == nil")]),
        Bench::new(
            "afwp_dll/dll_splice",
            Category::AfwpDll,
            DLL_SPLICE,
            "dll_splice",
            vec![nil_or(adlist_broken), nil_or(adlist_broken)],
        )
        .spec(
            "adsll(a) * adsll(b)",
            &[
                (0, "adsll(b) & a == nil & res == b"),
                (1, "adsll(a) & res == a"),
            ],
        )
        .loop_inv("walk", "adsll(a) * adsll(b)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in sll_benches().into_iter().chain(dll_benches()) {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn counts_match_table1() {
        assert_eq!(sll_benches().len(), 11);
        assert_eq!(dll_benches().len(), 2);
    }
}
