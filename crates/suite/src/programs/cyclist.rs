//! Cyclist benchmarks (Brotherston & Gorogiannis; Table 1 row "Cyclist",
//! 4 programs): a frame stack (`aplas-stack`), a composite tree with
//! parent pointers (`composite4`), a collection iterator (`iter`), and
//! the Schorr-Waite graph-marking algorithm on binary trees.

use sling_lang::{RtHeap, TreeKind};
use sling_logic::Symbol;
use sling_models::Val;

use crate::predicates::{compnode_layout, swnode_layout};
use crate::program::{nil_or, ArgCand, Bench, Category};

use rand::Rng;

fn swtree(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: swnode_layout(),
        kind: TreeKind::Random,
        size,
    }
}

fn comptree(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: compnode_layout(),
        kind: TreeKind::Random,
        size,
    }
}

/// A frame stack of the given depth.
fn gen_frames(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    let frame = Symbol::intern("Frame");
    let mut below = Val::Nil;
    for _ in 0..rng.gen_range(1..8) {
        below = Val::Addr(heap.alloc(frame, vec![below, Val::Int(rng.gen_range(0..100))]));
    }
    below
}

/// A collection with items and a cursor mid-way (for `iter`).
fn gen_items(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    let item = Symbol::intern("Item");
    let mut next = Val::Nil;
    for _ in 0..rng.gen_range(1..10) {
        next = Val::Addr(heap.alloc(item, vec![next, Val::Int(rng.gen_range(0..100))]));
    }
    next
}

const APLAS_STACK: &str = r#"
struct Frame { below: Frame*; val: int; }
fn push(s: Frame*, v: int) -> Frame* {
    return new Frame { below: s, val: v };
}
fn pop(s: Frame*) -> Frame* {
    if (s == null) {
        return null;
    }
    var rest: Frame* = s->below;
    free(s);
    return rest;
}
fn aplasStack(s: Frame*, v: int) -> Frame* {
    @start;
    var grown: Frame* = push(s, v);
    grown = push(grown, v + 1);
    var shrunk: Frame* = pop(grown);
    @end;
    return shrunk;
}
"#;

const COMPOSITE4: &str = r#"
struct CompNode { left: CompNode*; right: CompNode*; parent: CompNode*; data: int; }
fn addChild(t: CompNode*, k: int) -> CompNode* {
    if (t == null) {
        return new CompNode { data: k };
    }
    var n: CompNode* = new CompNode { data: k };
    if (t->left == null) {
        t->left = n;
        n->parent = t;
    } else {
        if (t->right == null) {
            t->right = n;
            n->parent = t;
        } else {
            t->left = addChild(t->left, k);
        }
    }
    return t;
}
fn composite4(t: CompNode*, k: int) -> CompNode* {
    var grown: CompNode* = addChild(t, k);
    grown = addChild(grown, k + 1);
    return grown;
}
"#;

const ITER: &str = r#"
struct Item { next: Item*; data: int; }
fn iterSum(c: Item*) -> int {
    var cursor: Item* = c;
    var acc: int = 0;
    while @inv (cursor != null) {
        acc = acc + cursor->data;
        cursor = cursor->next;
    }
    return acc;
}
"#;

/// Schorr-Waite tree marking via pointer reversal (the recursion-free
/// classic, bounded here with explicit mark bits).
const SCHORR_WAITE: &str = r#"
struct SwNode { left: SwNode*; right: SwNode*; mark: int; }
fn schorrWaite(root: SwNode*) {
    var t: SwNode* = root;
    var p: SwNode* = null;
    while @inv (p != null || (t != null && t->mark == 0)) {
        if (t == null || t->mark != 0) {
            if (p->mark == 1) {
                // Swing: advance to the right child.
                p->mark = 2;
                var q: SwNode* = t;
                t = p->right;
                p->right = p->left;
                p->left = q;
            } else {
                // Retreat.
                p->mark = 3;
                var q2: SwNode* = t;
                t = p;
                p = t->right;
                t->right = q2;
            }
        } else {
            // Advance to the left child.
            t->mark = 1;
            var q3: SwNode* = p;
            p = t;
            t = t->left;
            p->left = q3;
        }
    }
    return;
}
"#;

/// The four Cyclist benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "cyclist/aplas-stack",
            Category::Cyclist,
            APLAS_STACK,
            "aplasStack",
            vec![
                vec![ArgCand::Nil, ArgCand::Custom(gen_frames)],
                vec![ArgCand::Int(1), ArgCand::Int(9)],
            ],
        )
        .spec("frames(s)", &[(0, "frames(res)")])
        .frees(),
        Bench::new(
            "cyclist/composite4",
            Category::Cyclist,
            COMPOSITE4,
            "composite4",
            vec![nil_or(comptree), vec![ArgCand::Int(3)]],
        )
        .spec("exists p. comp(t, p)", &[(0, "exists p. comp(res, p)")]),
        Bench::new(
            "cyclist/iter",
            Category::Cyclist,
            ITER,
            "iterSum",
            vec![vec![ArgCand::Nil, ArgCand::Custom(gen_items)]],
        )
        .spec("items(c)", &[(0, "items(c)")])
        .loop_inv("inv", "items(cursor)"),
        Bench::new(
            "cyclist/schorr-waite",
            Category::Cyclist,
            SCHORR_WAITE,
            "schorrWaite",
            vec![nil_or(swtree)],
        )
        .spec("swtree(root)", &[(0, "swtree(root)")])
        .hard_to_reach(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 4);
    }

    #[test]
    fn schorr_waite_terminates_and_marks() {
        use rand::SeedableRng;
        use sling_lang::{Vm, VmConfig};
        let p = parse_program(SCHORR_WAITE).unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let root = sling_lang::gen_tree(
            &mut vm.heap,
            &swnode_layout(),
            7,
            TreeKind::Random,
            &mut rng,
        );
        vm.call(Symbol::intern("schorrWaite"), &[root])
            .expect("marks without fault");
        // Every node fully processed (mark == 3) and structure restored.
        let Val::Addr(r) = root else { panic!() };
        fn check(heap: &sling_lang::RtHeap, l: sling_models::Loc) {
            let c = heap.live().get(l).unwrap().clone();
            assert_eq!(c.fields[2], Val::Int(3), "node not fully processed");
            for side in [0, 1] {
                if let Val::Addr(ch) = c.fields[side] {
                    check(heap, ch);
                }
            }
        }
        check(&vm.heap, r);
    }
}
