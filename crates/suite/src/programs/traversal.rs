//! Tree-traversal programs (Table 1 row "Tree Traversal", 5 programs;
//! `tree2listIter` carries the seeded segfault `∗`).

use sling_lang::TreeKind;

use crate::predicates::tnode_layout;
use crate::program::{nil_or, ArgCand, Bench, BugKind, Category};

fn tree(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: tnode_layout(),
        kind: TreeKind::Random,
        size,
    }
}

const INORDER: &str = r#"
struct SNode { next: SNode*; data: int; }
struct TNode { left: TNode*; right: TNode*; data: int; }
fn traverseInorder(t: TNode*, acc: SNode*) -> SNode* {
    if (t == null) {
        return acc;
    }
    var right: SNode* = traverseInorder(t->right, acc);
    var here: SNode* = new SNode { next: right, data: t->data };
    return traverseInorder(t->left, here);
}
"#;

const POSTORDER: &str = r#"
struct SNode { next: SNode*; data: int; }
struct TNode { left: TNode*; right: TNode*; data: int; }
fn traversePostorder(t: TNode*, acc: SNode*) -> SNode* {
    if (t == null) {
        return acc;
    }
    var here: SNode* = new SNode { next: acc, data: t->data };
    var right: SNode* = traversePostorder(t->right, here);
    return traversePostorder(t->left, right);
}
"#;

const PREORDER: &str = r#"
struct SNode { next: SNode*; data: int; }
struct TNode { left: TNode*; right: TNode*; data: int; }
fn traversePreorder(t: TNode*, acc: SNode*) -> SNode* {
    if (t == null) {
        return acc;
    }
    var right: SNode* = traversePreorder(t->right, acc);
    var left: SNode* = traversePreorder(t->left, right);
    return new SNode { next: left, data: t->data };
}
"#;

/// Flattens a tree into its right spine (`rlist`).
const TREE2LIST: &str = r#"
struct SNode { next: SNode*; data: int; }
struct TNode { left: TNode*; right: TNode*; data: int; }
fn tree2list(t: TNode*) -> TNode* {
    if (t == null) {
        return null;
    }
    var left: TNode* = tree2list(t->left);
    var right: TNode* = tree2list(t->right);
    t->left = null;
    t->right = right;
    if (left == null) {
        return t;
    }
    var tail: TNode* = left;
    while @splice (tail->right != null) {
        tail = tail->right;
    }
    tail->right = t;
    return left;
}
"#;

/// Seeded bug (`∗`): the iterative flattening loses its worklist link and
/// dereferences null on every non-trivial input.
const TREE2LIST_ITER_BUG: &str = r#"
struct SNode { next: SNode*; data: int; }
struct TNode { left: TNode*; right: TNode*; data: int; }
fn tree2listIter(t: TNode*) -> TNode* {
    // BUG: starts from t->right without a null check on t.
    var cur: TNode* = t->right;
    while (cur != null) {
        var l: TNode* = cur->left;
        // BUG: unconditionally walks l->right.
        var probe: TNode* = l->right;
        cur->left = probe;
        cur = cur->right;
    }
    return t;
}
"#;

/// The five traversal benchmarks.
pub fn benches() -> Vec<Bench> {
    let tree_and_acc = || {
        vec![
            nil_or(tree),
            vec![
                ArgCand::Nil,
                ArgCand::List {
                    layout: crate::predicates::snode_layout(),
                    order: sling_lang::DataOrder::Random,
                    size: 3,
                    circular: false,
                },
            ],
        ]
    };
    vec![
        Bench::new(
            "traversal/traverseInorder",
            Category::TreeTraversal,
            INORDER,
            "traverseInorder",
            tree_and_acc(),
        )
        .spec(
            "tree(t) * sll(acc)",
            &[
                (0, "sll(res) & t == nil & res == acc"),
                (2, "tree(t) * sll(res)"),
            ],
        ),
        Bench::new(
            "traversal/traversePostorder",
            Category::TreeTraversal,
            POSTORDER,
            "traversePostorder",
            tree_and_acc(),
        )
        .spec(
            "tree(t) * sll(acc)",
            &[
                (0, "sll(res) & t == nil & res == acc"),
                (1, "tree(t) * sll(res)"),
            ],
        ),
        Bench::new(
            "traversal/traversePreorder",
            Category::TreeTraversal,
            PREORDER,
            "traversePreorder",
            tree_and_acc(),
        )
        .spec(
            "tree(t) * sll(acc)",
            &[
                (0, "sll(res) & t == nil & res == acc"),
                (1, "tree(t) * sll(res)"),
            ],
        ),
        Bench::new(
            "traversal/tree2list",
            Category::TreeTraversal,
            TREE2LIST,
            "tree2list",
            vec![nil_or(tree)],
        )
        .spec(
            "tree(t)",
            &[
                (0, "emp & t == nil & res == nil"),
                (1, "rlist(res) & res == t"),
            ],
        ),
        Bench::new(
            "traversal/tree2listIter",
            Category::TreeTraversal,
            TREE2LIST_ITER_BUG,
            "tree2listIter",
            vec![nil_or(tree)],
        )
        .spec("tree(t)", &[(0, "rlist(res)")])
        .bug(BugKind::Segfault),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 5);
    }
}
