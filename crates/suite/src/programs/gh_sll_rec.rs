//! GRASShopper singly-linked-list programs, recursive versions (Table 1
//! row "GRASShopper_SLL (Recursive)", 8 programs).

use sling_lang::DataOrder;

use crate::predicates::hnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn hlist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: hnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CONCAT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn concat(a: HNode*, b: HNode*) -> HNode* {
    if (a == null) {
        return b;
    }
    a->next = concat(a->next, b);
    return a;
}
"#;

const COPY: &str = r#"
struct HNode { next: HNode*; data: int; }
fn copy(x: HNode*) -> HNode* {
    if (x == null) {
        return null;
    }
    var n: HNode* = new HNode { data: x->data };
    n->next = copy(x->next);
    return n;
}
"#;

const DISPOSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn dispose(x: HNode*) {
    if (x == null) {
        return;
    }
    dispose(x->next);
    free(x);
    return;
}
"#;

const FILTER: &str = r#"
struct HNode { next: HNode*; data: int; }
fn filter(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return null;
    }
    var rest: HNode* = filter(x->next, k);
    if (x->data < k) {
        free(x);
        return rest;
    }
    x->next = rest;
    return x;
}
"#;

const INSERT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn insert(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return new HNode { data: k };
    }
    x->next = insert(x->next, k);
    return x;
}
"#;

const RM: &str = r#"
struct HNode { next: HNode*; data: int; }
fn rm(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var rest: HNode* = x->next;
        free(x);
        return rest;
    }
    x->next = rm(x->next, k);
    return x;
}
"#;

const REVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn revAppend(x: HNode*, acc: HNode*) -> HNode* {
    if (x == null) {
        return acc;
    }
    var t: HNode* = x->next;
    x->next = acc;
    return revAppend(t, x);
}
fn reverse(x: HNode*) -> HNode* {
    return revAppend(x, null);
}
"#;

const TRAVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn traverse(x: HNode*) -> int {
    if (x == null) {
        return 0;
    }
    return 1 + traverse(x->next);
}
"#;

/// The eight recursive GRASShopper SLL benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(hlist)];
    let with_key = || vec![nil_or(hlist), int_keys()];
    vec![
        Bench::new(
            "gh_sll_rec/concat",
            Category::GrasshopperSllRec,
            CONCAT,
            "concat",
            vec![nil_or(hlist), nil_or(hlist)],
        )
        .spec("hsll(a) * hsll(b)", &[(0, "hsll(res)"), (1, "hsll(res)")]),
        Bench::new(
            "gh_sll_rec/copy",
            Category::GrasshopperSllRec,
            COPY,
            "copy",
            one(),
        )
        .spec(
            "hsll(x)",
            &[
                (0, "emp & x == nil & res == nil"),
                (1, "hsll(x) * hsll(res)"),
            ],
        ),
        Bench::new(
            "gh_sll_rec/dispose",
            Category::GrasshopperSllRec,
            DISPOSE,
            "dispose",
            one(),
        )
        .spec("hsll(x)", &[(1, "emp")])
        .frees(),
        Bench::new(
            "gh_sll_rec/filter",
            Category::GrasshopperSllRec,
            FILTER,
            "filter",
            with_key(),
        )
        .spec("hsll(x)", &[(0, "hsll(res)")])
        .frees(),
        Bench::new(
            "gh_sll_rec/insert",
            Category::GrasshopperSllRec,
            INSERT,
            "insert",
            with_key(),
        )
        .spec("hsll(x)", &[(0, "hsll(res)"), (1, "hsll(res)")]),
        Bench::new(
            "gh_sll_rec/rm",
            Category::GrasshopperSllRec,
            RM,
            "rm",
            with_key(),
        )
        .spec("hsll(x)", &[(0, "emp & x == nil & res == nil")])
        .frees(),
        Bench::new(
            "gh_sll_rec/reverse",
            Category::GrasshopperSllRec,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("hsll(x)", &[(0, "hsll(res)")]),
        Bench::new(
            "gh_sll_rec/traverse",
            Category::GrasshopperSllRec,
            TRAVERSE,
            "traverse",
            one(),
        )
        .spec("hsll(x)", &[(0, "emp & x == nil"), (1, "hsll(x)")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 8);
    }
}
