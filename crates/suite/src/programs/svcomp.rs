//! SV-COMP heap programs (Table 1 row "SV-COMP", 7 programs): the
//! master/slave nested-list family — every `Master` owns a `Slave` list.

use rand::Rng;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::program::{ArgCand, Bench, Category};

/// A master list where each master owns a short slave list.
fn gen_masters(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    let master = Symbol::intern("Master");
    let slave = Symbol::intern("Slave");
    let mut mhead = Val::Nil;
    for _ in 0..4 {
        let mut shead = Val::Nil;
        for _ in 0..rng.gen_range(0..4) {
            shead = Val::Addr(heap.alloc(slave, vec![shead]));
        }
        mhead = Val::Addr(heap.alloc(master, vec![mhead, shead]));
    }
    mhead
}

fn master_inputs() -> Vec<ArgCand> {
    vec![ArgCand::Nil, ArgCand::Custom(gen_masters)]
}

const ALLOC_SLAVE: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn allocSlave(m: Master*) {
    while @inv (m != null) {
        if (m->slave == null) {
            m->slave = new Slave;
        }
        m = m->next;
    }
    return;
}
"#;

const INSERT_SLAVE: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn insertSlave(m: Master*) {
    while @inv (m != null) {
        var s: Slave* = new Slave { next: m->slave };
        m->slave = s;
        m = m->next;
    }
    return;
}
"#;

const CREATE_SLAVE: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn createSlave(n: int) -> Slave* {
    var s: Slave* = null;
    while @inv (n > 0) {
        s = new Slave { next: s };
        n = n - 1;
    }
    return s;
}
"#;

const DESTROY_SLAVE: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn destroySlave(m: Master*) {
    while @outer (m != null) {
        var s: Slave* = m->slave;
        while @inner (s != null) {
            var t: Slave* = s->next;
            free(s);
            s = t;
        }
        m->slave = null;
        m = m->next;
    }
    return;
}
"#;

const ADD: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn add(m: Master*) -> Master* {
    var n: Master* = new Master { next: m };
    n->slave = new Slave;
    return n;
}
"#;

const DEL: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn del(m: Master*) -> Master* {
    if (m == null) {
        return null;
    }
    var rest: Master* = m->next;
    var s: Slave* = m->slave;
    while @drain (s != null) {
        var t: Slave* = s->next;
        free(s);
        s = t;
    }
    free(m);
    return rest;
}
"#;

const INIT: &str = r#"
struct Slave { next: Slave*; }
struct Master { next: Master*; slave: Slave*; }
fn init(n: int) -> Master* {
    var m: Master* = null;
    while @inv (n > 0) {
        m = new Master { next: m };
        n = n - 1;
    }
    return m;
}
"#;

/// The seven SV-COMP benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "svcomp/allocSlave",
            Category::SvComp,
            ALLOC_SLAVE,
            "allocSlave",
            vec![master_inputs()],
        )
        .spec("mlist(m)", &[(0, "emp & m == nil")])
        .loop_inv("inv", "mlist(m)"),
        Bench::new(
            "svcomp/insertSlave",
            Category::SvComp,
            INSERT_SLAVE,
            "insertSlave",
            vec![master_inputs()],
        )
        .spec("mlist(m)", &[(0, "emp & m == nil")])
        .loop_inv("inv", "mlist(m)"),
        Bench::new(
            "svcomp/createSlave",
            Category::SvComp,
            CREATE_SLAVE,
            "createSlave",
            vec![vec![ArgCand::Int(0), ArgCand::Int(3), ArgCand::Int(10)]],
        )
        .spec("emp", &[(0, "slist(res)")])
        .loop_inv("inv", "slist(s)"),
        Bench::new(
            "svcomp/destroySlave",
            Category::SvComp,
            DESTROY_SLAVE,
            "destroySlave",
            vec![master_inputs()],
        )
        .spec("mlist(m)", &[(0, "emp & m == nil")])
        .frees(),
        Bench::new(
            "svcomp/add",
            Category::SvComp,
            ADD,
            "add",
            vec![master_inputs()],
        )
        .spec("mlist(m)", &[(0, "mlist(res)")]),
        Bench::new(
            "svcomp/del",
            Category::SvComp,
            DEL,
            "del",
            vec![master_inputs()],
        )
        .spec(
            "mlist(m)",
            &[(0, "emp & m == nil & res == nil"), (1, "mlist(res)")],
        )
        .frees(),
        Bench::new(
            "svcomp/init",
            Category::SvComp,
            INIT,
            "init",
            vec![vec![ArgCand::Int(0), ArgCand::Int(4), ArgCand::Int(10)]],
        )
        .spec("emp", &[(0, "mlist(res)")])
        .loop_inv("inv", "mlist(m)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 7);
    }
}
