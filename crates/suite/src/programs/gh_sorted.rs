//! GRASShopper sorted-list programs (Table 1 row
//! "GRASShopper_SortedList", 14 programs; `insertionSort` is `†`
//! (checker-heavy loops) and `mergeSort` is `∗` (seeded segfault)).

use sling_lang::DataOrder;

use crate::predicates::hnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, BugKind, Category};

fn sorted(size: usize) -> ArgCand {
    ArgCand::List {
        layout: hnode_layout(),
        order: DataOrder::Sorted,
        size,
        circular: false,
    }
}

fn unsorted(size: usize) -> ArgCand {
    ArgCand::List {
        layout: hnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CONCAT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn concat(a: HNode*, b: HNode*) -> HNode* {
    if (a == null) {
        return b;
    }
    a->next = concat(a->next, b);
    return a;
}
"#;

const COPY: &str = r#"
struct HNode { next: HNode*; data: int; }
fn copy(x: HNode*) -> HNode* {
    if (x == null) {
        return null;
    }
    var n: HNode* = new HNode { data: x->data };
    n->next = copy(x->next);
    return n;
}
"#;

const DISPOSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn dispose(x: HNode*) {
    if (x == null) {
        return;
    }
    dispose(x->next);
    free(x);
    return;
}
"#;

const FILTER: &str = r#"
struct HNode { next: HNode*; data: int; }
fn filter(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return null;
    }
    var rest: HNode* = filter(x->next, k);
    if (x->data < k) {
        free(x);
        return rest;
    }
    x->next = rest;
    return x;
}
"#;

const INSERT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn insert(x: HNode*, k: int) -> HNode* {
    if (x == null || k <= x->data) {
        return new HNode { next: x, data: k };
    }
    x->next = insert(x->next, k);
    return x;
}
"#;

const REVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn reverse(x: HNode*) -> HNode* {
    var r: HNode* = null;
    while @inv (x != null) {
        var t: HNode* = x->next;
        x->next = r;
        r = x;
        x = t;
    }
    return r;
}
"#;

const RM: &str = r#"
struct HNode { next: HNode*; data: int; }
fn rm(x: HNode*, k: int) -> HNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var rest: HNode* = x->next;
        free(x);
        return rest;
    }
    if (x->data > k) {
        return x;
    }
    x->next = rm(x->next, k);
    return x;
}
"#;

const SPLIT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn split(x: HNode*) -> HNode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return null;
    }
    var second: HNode* = x->next;
    x->next = second->next;
    second->next = split(second);
    return second;
}
"#;

const TRAVERSE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn traverse(x: HNode*) -> int {
    var n: int = 0;
    while @inv (x != null) {
        n = n + 1;
        x = x->next;
    }
    return n;
}
"#;

const MERGE: &str = r#"
struct HNode { next: HNode*; data: int; }
fn merge(a: HNode*, b: HNode*) -> HNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data <= b->data) {
        a->next = merge(a->next, b);
        return a;
    }
    b->next = merge(a, b->next);
    return b;
}
"#;

const DOUBLE_ALL: &str = r#"
struct HNode { next: HNode*; data: int; }
fn doubleAll(x: HNode*) {
    while @inv (x != null) {
        x->data = 2 * x->data;
        x = x->next;
    }
    return;
}
"#;

const PAIRWISE_SUM: &str = r#"
struct HNode { next: HNode*; data: int; }
fn pairwiseSum(a: HNode*, b: HNode*) -> HNode* {
    if (a == null || b == null) {
        return null;
    }
    var n: HNode* = new HNode { data: a->data + b->data };
    n->next = pairwiseSum(a->next, b->next);
    return n;
}
"#;

/// `†`: the nested insertion loops hammer the checker with loop traces.
const INSERTION_SORT: &str = r#"
struct HNode { next: HNode*; data: int; }
fn insertionSort(x: HNode*) -> HNode* {
    var s: HNode* = null;
    while @outer (x != null) {
        var t: HNode* = x->next;
        if (s == null || x->data <= s->data) {
            x->next = s;
            s = x;
        } else {
            var cur: HNode* = s;
            while @inner (cur->next != null && cur->next->data < x->data) {
                cur = cur->next;
            }
            x->next = cur->next;
            cur->next = x;
        }
        x = t;
    }
    return s;
}
"#;

/// `∗`: the split step loses the list tail and dereferences null.
const MERGE_SORT_BUG: &str = r#"
struct HNode { next: HNode*; data: int; }
fn mergeSort(x: HNode*) -> HNode* {
    // BUG: no null check — crashes immediately on the empty list, and the
    // "split" below walks past the end for every non-empty one.
    var fast: HNode* = x->next->next;
    while (fast != null) {
        fast = fast->next->next;
    }
    return x;
}
"#;

/// The fourteen GRASShopper sorted-list benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(sorted)];
    let with_key = || vec![nil_or(sorted), int_keys()];
    vec![
        Bench::new(
            "gh_sorted/concat",
            Category::GrasshopperSorted,
            CONCAT,
            "concat",
            vec![nil_or(sorted), nil_or(sorted)],
        )
        .spec(
            "exists m1, m2. hsrtl(a, m1) * hsrtl(b, m2)",
            &[
                (0, "exists m. hsrtl(b, m) & a == nil & res == b"),
                (1, "hsll(a) & res == a"),
            ],
        ),
        Bench::new(
            "gh_sorted/copy",
            Category::GrasshopperSorted,
            COPY,
            "copy",
            one(),
        )
        .spec(
            "exists m. hsrtl(x, m)",
            &[
                (0, "emp & x == nil & res == nil"),
                (1, "exists m1, m2. hsrtl(x, m1) * hsrtl(res, m2)"),
            ],
        ),
        Bench::new(
            "gh_sorted/dispose",
            Category::GrasshopperSorted,
            DISPOSE,
            "dispose",
            one(),
        )
        .spec("exists m. hsrtl(x, m)", &[(1, "emp")])
        .frees(),
        Bench::new(
            "gh_sorted/filter",
            Category::GrasshopperSorted,
            FILTER,
            "filter",
            with_key(),
        )
        .spec(
            "exists m. hsrtl(x, m)",
            &[(0, "emp & x == nil & res == nil")],
        )
        .frees(),
        Bench::new(
            "gh_sorted/insert",
            Category::GrasshopperSorted,
            INSERT,
            "insert",
            with_key(),
        )
        .spec(
            "exists m. hsrtl(x, m)",
            &[(1, "exists m. hsrtl(x, m) & res == x")],
        ),
        Bench::new(
            "gh_sorted/reverse",
            Category::GrasshopperSorted,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("exists m. hsrtl(x, m)", &[(0, "hsll(res) & x == nil")])
        .loop_inv("inv", "exists m. hsrtl(x, m) * hsll(r)"),
        Bench::new(
            "gh_sorted/rm",
            Category::GrasshopperSorted,
            RM,
            "rm",
            with_key(),
        )
        .spec(
            "exists m. hsrtl(x, m)",
            &[(0, "emp & x == nil & res == nil")],
        )
        .frees(),
        Bench::new(
            "gh_sorted/split",
            Category::GrasshopperSorted,
            SPLIT,
            "split",
            one(),
        )
        .spec(
            "exists m. hsrtl(x, m)",
            &[(0, "emp & x == nil & res == nil")],
        ),
        Bench::new(
            "gh_sorted/traverse",
            Category::GrasshopperSorted,
            TRAVERSE,
            "traverse",
            one(),
        )
        .spec("exists m. hsrtl(x, m)", &[(0, "emp & x == nil")])
        .loop_inv("inv", "exists m. hsrtl(x, m)"),
        Bench::new(
            "gh_sorted/merge",
            Category::GrasshopperSorted,
            MERGE,
            "merge",
            vec![nil_or(sorted), nil_or(sorted)],
        )
        .spec(
            "exists m1, m2. hsrtl(a, m1) * hsrtl(b, m2)",
            &[
                (0, "exists m. hsrtl(b, m) & a == nil & res == b"),
                (1, "exists m. hsrtl(a, m) & b == nil & res == a"),
            ],
        ),
        Bench::new(
            "gh_sorted/doubleAll",
            Category::GrasshopperSorted,
            DOUBLE_ALL,
            "doubleAll",
            one(),
        )
        .spec("exists m. hsrtl(x, m)", &[(0, "emp & x == nil")])
        .loop_inv("inv", "exists m. hsrtl(x, m)"),
        Bench::new(
            "gh_sorted/pairwiseSum",
            Category::GrasshopperSorted,
            PAIRWISE_SUM,
            "pairwiseSum",
            vec![nil_or(sorted), nil_or(sorted)],
        )
        .spec(
            "exists m1, m2. hsrtl(a, m1) * hsrtl(b, m2)",
            &[(0, "emp & res == nil")],
        ),
        Bench::new(
            "gh_sorted/insertionSort",
            Category::GrasshopperSorted,
            INSERTION_SORT,
            "insertionSort",
            vec![nil_or(unsorted)],
        )
        .spec("hsll(x)", &[(0, "exists m. hsrtl(res, m) & x == nil")])
        .loop_inv("outer", "exists m. hsll(x) * hsrtl(s, m)")
        .hard_to_reach(),
        Bench::new(
            "gh_sorted/mergeSort",
            Category::GrasshopperSorted,
            MERGE_SORT_BUG,
            "mergeSort",
            vec![nil_or(unsorted)],
        )
        .spec("hsll(x)", &[(0, "exists m. hsrtl(res, m)")])
        .bug(BugKind::Segfault),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 14);
    }
}
