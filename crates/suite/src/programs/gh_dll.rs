//! GRASShopper doubly-linked-list programs (Table 1 row
//! "GRASShopper_DLL", 8 programs; the paper marks `filter` with `†` —
//! its loop locations gather so many traces that checking times out).

use sling_lang::DataOrder;

use crate::predicates::hdnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn hdlist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: hdnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CONCAT: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn concat(a: HdNode*, b: HdNode*) -> HdNode* {
    if (a == null) {
        return b;
    }
    var t: HdNode* = a;
    while @walk (t->next != null) {
        t = t->next;
    }
    t->next = b;
    if (b != null) {
        b->prev = t;
    }
    return a;
}
"#;

const COPY: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn copy(x: HdNode*) -> HdNode* {
    var head: HdNode* = null;
    var tail: HdNode* = null;
    while @inv (x != null) {
        var n: HdNode* = new HdNode { data: x->data };
        if (tail == null) {
            head = n;
        } else {
            tail->next = n;
            n->prev = tail;
        }
        tail = n;
        x = x->next;
    }
    return head;
}
"#;

const DISPOSE: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn dispose(x: HdNode*) {
    while @inv (x != null) {
        var t: HdNode* = x->next;
        free(x);
        x = t;
    }
    return;
}
"#;

const FILTER: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn filter(x: HdNode*, k: int) -> HdNode* {
    var head: HdNode* = x;
    var cur: HdNode* = x;
    while @inv (cur != null) {
        var t: HdNode* = cur->next;
        if (cur->data < k) {
            if (cur->prev == null) {
                head = t;
            } else {
                cur->prev->next = t;
            }
            if (t != null) {
                t->prev = cur->prev;
            }
            free(cur);
        }
        cur = t;
    }
    return head;
}
"#;

const INSERT: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn insert(x: HdNode*, k: int) -> HdNode* {
    var n: HdNode* = new HdNode { data: k };
    if (x == null) {
        return n;
    }
    var cur: HdNode* = x;
    while @walk (cur->next != null) {
        cur = cur->next;
    }
    cur->next = n;
    n->prev = cur;
    return x;
}
"#;

const RM: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn rm(x: HdNode*, k: int) -> HdNode* {
    var cur: HdNode* = x;
    while @scan (cur != null && cur->data != k) {
        cur = cur->next;
    }
    if (cur == null) {
        return x;
    }
    if (cur->prev != null) {
        cur->prev->next = cur->next;
    }
    if (cur->next != null) {
        cur->next->prev = cur->prev;
    }
    if (cur == x) {
        var rest: HdNode* = cur->next;
        free(cur);
        return rest;
    }
    free(cur);
    return x;
}
"#;

const REVERSE: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn reverse(x: HdNode*) -> HdNode* {
    var last: HdNode* = null;
    while @inv (x != null) {
        last = x;
        x = last->next;
        last->next = last->prev;
        last->prev = x;
    }
    return last;
}
"#;

const TRAVERSE: &str = r#"
struct HdNode { next: HdNode*; prev: HdNode*; data: int; }
fn traverse(x: HdNode*) -> int {
    var n: int = 0;
    while @inv (x != null) {
        n = n + 1;
        x = x->next;
    }
    return n;
}
"#;

/// The eight GRASShopper DLL benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(hdlist)];
    let with_key = || vec![nil_or(hdlist), int_keys()];
    vec![
        Bench::new(
            "gh_dll/concat",
            Category::GrasshopperDll,
            CONCAT,
            "concat",
            vec![nil_or(hdlist), nil_or(hdlist)],
        )
        .spec(
            "exists p, u, q, v. hdll(a, p, u, nil) * hdll(b, q, v, nil)",
            &[
                (0, "exists q, v. hdll(b, q, v, nil) & a == nil & res == b"),
                (1, "exists p, u. hdll(a, p, u, nil) & res == a"),
            ],
        )
        .loop_inv(
            "walk",
            "exists p, u, q, v. hdll(a, p, u, nil) * hdll(b, q, v, nil)",
        ),
        Bench::new("gh_dll/copy", Category::GrasshopperDll, COPY, "copy", one())
            .spec(
                "exists p, u. hdll(x, p, u, nil)",
                &[(0, "exists u. hdll(res, nil, u, nil) & x == nil")],
            )
            .loop_inv("inv", "exists p, u. hdll(x, p, u, nil)"),
        Bench::new(
            "gh_dll/dispose",
            Category::GrasshopperDll,
            DISPOSE,
            "dispose",
            one(),
        )
        .spec("exists p, u. hdll(x, p, u, nil)", &[(0, "emp")])
        .frees(),
        Bench::new(
            "gh_dll/filter",
            Category::GrasshopperDll,
            FILTER,
            "filter",
            with_key(),
        )
        .spec(
            "exists p, u. hdll(x, p, u, nil)",
            &[(0, "exists u. hdll(res, nil, u, nil)")],
        )
        .frees()
        .hard_to_reach(),
        Bench::new(
            "gh_dll/insert",
            Category::GrasshopperDll,
            INSERT,
            "insert",
            with_key(),
        )
        .spec(
            "exists p, u. hdll(x, p, u, nil)",
            &[
                (
                    0,
                    "exists d. res -> HdNode{next: nil, prev: nil, data: d} & x == nil",
                ),
                (1, "exists p, u. hdll(x, p, u, nil) & res == x"),
            ],
        )
        .loop_inv("walk", "exists p, u. hdll(x, p, u, nil)"),
        Bench::new("gh_dll/rm", Category::GrasshopperDll, RM, "rm", with_key())
            .spec(
                "exists p, u. hdll(x, p, u, nil)",
                &[(0, "exists p, u. hdll(x, p, u, nil) & res == x")],
            )
            .frees(),
        Bench::new(
            "gh_dll/reverse",
            Category::GrasshopperDll,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("exists p, u. hdll(x, p, u, nil)", &[(0, "emp & x == nil")])
        .loop_inv("inv", "exists p, u. hdll(x, p, u, nil)"),
        Bench::new(
            "gh_dll/traverse",
            Category::GrasshopperDll,
            TRAVERSE,
            "traverse",
            one(),
        )
        .spec("exists p, u. hdll(x, p, u, nil)", &[(0, "emp & x == nil")])
        .loop_inv("inv", "exists p, u. hdll(x, p, u, nil)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 8);
    }
}
