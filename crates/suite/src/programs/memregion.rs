//! Linux-kernel-style memory-region program (Table 1 row
//! "Memory Region", 1 program, 67 LoC in the paper): a doubly linked
//! list of `[start, start+size)` descriptors with insert-sorted,
//! coalesce, and lookup operations exercised in one driver.

use rand::Rng;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::program::{ArgCand, Bench, Category};

/// A sorted, non-overlapping region list.
fn gen_regions(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    let mr = Symbol::intern("MRegion");
    let n = 6;
    let mut start = 0i64;
    let mut locs = Vec::new();
    for _ in 0..n {
        start += rng.gen_range(2i64..10);
        let size = rng.gen_range(1..5);
        locs.push(heap.alloc(
            mr,
            vec![Val::Nil, Val::Nil, Val::Int(start), Val::Int(size)],
        ));
        start += size;
    }
    for i in 0..n {
        if i + 1 < n {
            heap.live_mut(locs[i]).unwrap().fields[0] = Val::Addr(locs[i + 1]);
        }
        if i > 0 {
            heap.live_mut(locs[i]).unwrap().fields[1] = Val::Addr(locs[i - 1]);
        }
    }
    Val::Addr(locs[0])
}

const MEM_REGION: &str = r#"
struct MRegion { next: MRegion*; prev: MRegion*; start: int; size: int; }

fn regionEnd(r: MRegion*) -> int {
    return r->start + r->size;
}

fn lookup(head: MRegion*, addr: int) -> MRegion* {
    var cur: MRegion* = head;
    while @find (cur != null) {
        if (cur->start <= addr && addr < cur->start + cur->size) {
            return cur;
        }
        cur = cur->next;
    }
    return null;
}

fn insertSorted(head: MRegion*, r: MRegion*) -> MRegion* {
    if (head == null) {
        return r;
    }
    if (r->start < head->start) {
        r->next = head;
        head->prev = r;
        return r;
    }
    var cur: MRegion* = head;
    while @place (cur->next != null && cur->next->start < r->start) {
        cur = cur->next;
    }
    r->next = cur->next;
    r->prev = cur;
    if (cur->next != null) {
        cur->next->prev = r;
    }
    cur->next = r;
    return head;
}

fn coalesce(head: MRegion*) -> MRegion* {
    var cur: MRegion* = head;
    while @merge (cur != null && cur->next != null) {
        if (cur->start + cur->size == cur->next->start) {
            var victim: MRegion* = cur->next;
            cur->size = cur->size + victim->size;
            cur->next = victim->next;
            if (victim->next != null) {
                victim->next->prev = cur;
            }
            free(victim);
        } else {
            cur = cur->next;
        }
    }
    return head;
}

fn memRegionDllOps(head: MRegion*, addr: int, size: int) -> MRegion* {
    var hit: MRegion* = lookup(head, addr);
    if (hit != null) {
        return head;
    }
    var fresh: MRegion* = new MRegion { start: addr, size: size };
    var merged: MRegion* = insertSorted(head, fresh);
    return coalesce(merged);
}
"#;

/// The single memory-region benchmark.
pub fn benches() -> Vec<Bench> {
    vec![Bench::new(
        "memregion/memRegionDllOps",
        Category::MemoryRegion,
        MEM_REGION,
        "memRegionDllOps",
        vec![
            vec![ArgCand::Nil, ArgCand::Custom(gen_regions)],
            vec![ArgCand::Int(1), ArgCand::Int(100)],
            vec![ArgCand::Int(2)],
        ],
    )
    .spec(
        "exists p, u. mrdll(head, p, u, nil)",
        &[
            (0, "exists p, u. mrdll(head, p, u, nil) & res == head"),
            (1, "exists p, u. mrdll(res, p, u, nil)"),
        ],
    )
    .frees()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 1);
    }
}
