//! Sorted-list programs (Table 1 row "Sorted List", 10 programs; the
//! paper marks `quickSort` with `∗` — a seeded segfault).

use sling_lang::DataOrder;

use crate::predicates::snode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, BugKind, Category};

fn sorted(size: usize) -> ArgCand {
    ArgCand::List {
        layout: snode_layout(),
        order: DataOrder::Sorted,
        size,
        circular: false,
    }
}

fn unsorted(size: usize) -> ArgCand {
    ArgCand::List {
        layout: snode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const CONCAT: &str = r#"
struct SNode { next: SNode*; data: int; }
fn concat(x: SNode*, y: SNode*) -> SNode* {
    if (x == null) {
        return y;
    }
    x->next = concat(x->next, y);
    return x;
}
"#;

const FIND: &str = r#"
struct SNode { next: SNode*; data: int; }
fn find(x: SNode*, k: int) -> SNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        return x;
    }
    if (x->data > k) {
        return null;
    }
    return find(x->next, k);
}
"#;

const FIND_LAST: &str = r#"
struct SNode { next: SNode*; data: int; }
fn findLast(x: SNode*) -> SNode* {
    if (x == null) {
        return null;
    }
    while @inv (x->next != null) {
        x = x->next;
    }
    return x;
}
"#;

const INSERT: &str = r#"
struct SNode { next: SNode*; data: int; }
fn insert(x: SNode*, k: int) -> SNode* {
    if (x == null) {
        return new SNode { data: k };
    }
    if (k <= x->data) {
        return new SNode { next: x, data: k };
    }
    x->next = insert(x->next, k);
    return x;
}
"#;

const INSERT_ITER: &str = r#"
struct SNode { next: SNode*; data: int; }
fn insertIter(x: SNode*, k: int) -> SNode* {
    var n: SNode* = new SNode { data: k };
    if (x == null) {
        return n;
    }
    if (k <= x->data) {
        n->next = x;
        return n;
    }
    var cur: SNode* = x;
    while @inv (cur->next != null && cur->next->data < k) {
        cur = cur->next;
    }
    n->next = cur->next;
    cur->next = n;
    return x;
}
"#;

const DEL_ALL: &str = r#"
struct SNode { next: SNode*; data: int; }
fn delAll(x: SNode*, k: int) -> SNode* {
    if (x == null) {
        return null;
    }
    if (x->data == k) {
        var t: SNode* = x->next;
        free(x);
        return delAll(t, k);
    }
    x->next = delAll(x->next, k);
    return x;
}
"#;

const REVERSE_SORT: &str = r#"
struct SNode { next: SNode*; data: int; }
fn reverseSort(x: SNode*) -> SNode* {
    var r: SNode* = null;
    while @inv (x != null) {
        var t: SNode* = x->next;
        x->next = r;
        r = x;
        x = t;
    }
    return r;
}
"#;

const INSERTION_SORT: &str = r#"
struct SNode { next: SNode*; data: int; }
fn sortedInsert(s: SNode*, n: SNode*) -> SNode* {
    if (s == null) {
        n->next = null;
        return n;
    }
    if (n->data <= s->data) {
        n->next = s;
        return n;
    }
    s->next = sortedInsert(s->next, n);
    return s;
}
fn insertionSort(x: SNode*) -> SNode* {
    var s: SNode* = null;
    while @inv (x != null) {
        var t: SNode* = x->next;
        s = sortedInsert(s, x);
        x = t;
    }
    return s;
}
"#;

const MERGE_SORT: &str = r#"
struct SNode { next: SNode*; data: int; }
fn merge(a: SNode*, b: SNode*) -> SNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data <= b->data) {
        a->next = merge(a->next, b);
        return a;
    }
    b->next = merge(a, b->next);
    return b;
}
fn split(x: SNode*) -> SNode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return null;
    }
    var second: SNode* = x->next;
    x->next = second->next;
    second->next = split(second);
    return second;
}
fn mergeSort(x: SNode*) -> SNode* {
    if (x == null) {
        return null;
    }
    if (x->next == null) {
        return x;
    }
    var second: SNode* = split(x);
    var a: SNode* = mergeSort(x);
    var b: SNode* = mergeSort(second);
    return merge(a, b);
}
"#;

/// `quickSort` with the corpus's seeded bug: the partition walks past the
/// pivot through a dangling next pointer and dereferences null on any
/// non-trivial input.
const QUICK_SORT_BUG: &str = r#"
struct SNode { next: SNode*; data: int; }
fn partition(x: SNode*, p: int) -> SNode* {
    if (x == null) {
        return null;
    }
    // BUG: the recursion drops the head's link before reading it back.
    x->next = null;
    var rest: SNode* = partition(x->next->next, p);
    return rest;
}
fn quickSort(x: SNode*) -> SNode* {
    if (x == null) {
        return null;
    }
    var lo: SNode* = partition(x->next, x->data);
    x->next = lo;
    return x;
}
"#;

/// The ten sorted-list benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(sorted)];
    let with_key = || vec![nil_or(sorted), int_keys()];
    vec![
        Bench::new(
            "sorted/concat",
            Category::SortedList,
            CONCAT,
            "concat",
            vec![nil_or(sorted), nil_or(sorted)],
        )
        .spec(
            "exists m1, m2. srtl(x, m1) * srtl(y, m2)",
            &[
                (0, "exists m. srtl(res, m) & x == nil & res == y"),
                (1, "sll(x) & res == x"),
            ],
        ),
        Bench::new(
            "sorted/find",
            Category::SortedList,
            FIND,
            "find",
            with_key(),
        )
        .spec(
            "exists m. srtl(x, m)",
            &[
                (0, "emp & x == nil & res == nil"),
                (1, "exists m. srtl(x, m) & res == x"),
            ],
        ),
        Bench::new(
            "sorted/findLast",
            Category::SortedList,
            FIND_LAST,
            "findLast",
            one(),
        )
        .spec(
            "exists m. srtl(x, m)",
            &[
                (0, "emp & x == nil & res == nil"),
                (1, "exists u, d. x -> SNode{next: nil, data: d} & res == x"),
            ],
        )
        .loop_inv("inv", "exists m. srtl(x, m)"),
        Bench::new(
            "sorted/insert",
            Category::SortedList,
            INSERT,
            "insert",
            with_key(),
        )
        .spec(
            "exists m. srtl(x, m)",
            &[
                (0, "exists d. res -> SNode{next: nil, data: d} & x == nil"),
                (2, "exists m. srtl(x, m) & res == x"),
            ],
        ),
        Bench::new(
            "sorted/insertIter",
            Category::SortedList,
            INSERT_ITER,
            "insertIter",
            with_key(),
        )
        .spec(
            "exists m. srtl(x, m)",
            &[(2, "exists m. srtl(x, m) & res == x")],
        )
        .loop_inv("inv", "exists m. srtl(cur, m)"),
        Bench::new(
            "sorted/delAll",
            Category::SortedList,
            DEL_ALL,
            "delAll",
            with_key(),
        )
        .spec(
            "exists m. srtl(x, m)",
            &[(0, "emp & x == nil & res == nil")],
        )
        .frees(),
        Bench::new(
            "sorted/reverseSort",
            Category::SortedList,
            REVERSE_SORT,
            "reverseSort",
            one(),
        )
        .spec("exists m. srtl(x, m)", &[(0, "sll(res) & x == nil")])
        .loop_inv("inv", "exists m1, m2. srtl(x, m1) * sll(r)"),
        Bench::new(
            "sorted/insertionSort",
            Category::SortedList,
            INSERTION_SORT,
            "insertionSort",
            vec![nil_or(unsorted)],
        )
        .spec("sll(x)", &[(0, "exists m. srtl(res, m) & x == nil")])
        .loop_inv("inv", "exists m. sll(x) * srtl(s, m)"),
        Bench::new(
            "sorted/mergeSort",
            Category::SortedList,
            MERGE_SORT,
            "mergeSort",
            vec![nil_or(unsorted)],
        )
        .spec("sll(x)", &[(2, "exists m. srtl(res, m)")]),
        Bench::new(
            "sorted/quickSort",
            Category::SortedList,
            QUICK_SORT_BUG,
            "quickSort",
            vec![nil_or(unsorted)],
        )
        .spec("sll(x)", &[(1, "sll(res)")])
        .bug(BugKind::Segfault),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 10);
    }

    #[test]
    fn quicksort_is_marked_buggy() {
        let qs = benches()
            .into_iter()
            .find(|b| b.name == "sorted/quickSort")
            .unwrap();
        assert_eq!(qs.bug, Some(BugKind::Segfault));
    }
}
