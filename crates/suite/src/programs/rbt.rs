//! Red-black-tree programs (Table 1 row "Red-black Tree", 2 programs;
//! `del` carries the seeded segfault `∗`, and §5.4 discusses `insert`,
//! which crashes after its first iteration, yielding a "too simple"
//! partial invariant).

use sling_lang::TreeKind;

use crate::predicates::rnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, BugKind, Category};

fn rbt(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: rnode_layout(),
        kind: TreeKind::RedBlack,
        size,
    }
}

/// Seeded bug (`∗`): rotation helpers dereference a missing grandparent.
const DEL_BUG: &str = r#"
struct RNode { left: RNode*; right: RNode*; color: int; data: int; }
fn del(t: RNode*, k: int) -> RNode* {
    // BUG: unconditionally inspects t->left->color.
    var c: int = t->left->color;
    if (c == 1) {
        t->left = del(t->left->left, k);
        return t;
    }
    return t->right;
}
"#;

/// The §5.4 `insert`: crashes *after the first rebalancing iteration*, so
/// partial traces exist and SLING's invariant covers only that first
/// iteration's data.
const INSERT_PARTIAL: &str = r#"
struct RNode { left: RNode*; right: RNode*; color: int; data: int; }
fn bstInsert(t: RNode*, k: int) -> RNode* {
    if (t == null) {
        return new RNode { color: 1, data: k };
    }
    if (k < t->data) {
        t->left = bstInsert(t->left, k);
    } else {
        t->right = bstInsert(t->right, k);
    }
    return t;
}
fn insert(t: RNode*, k: int) -> RNode* {
    @start;
    var r: RNode* = bstInsert(t, k);
    r->color = 0;
    @firstIter;
    // BUG: the "rebalance" walk assumes a red child always exists.
    var probe: RNode* = r->left;
    if (probe->color == 1) {
        probe->color = 0;
    }
    return r;
}
"#;

/// The two red-black-tree benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "rbt/del",
            Category::RedBlackTree,
            DEL_BUG,
            "del",
            vec![nil_or(rbt), int_keys()],
        )
        .spec("exists c. rbt(t, c)", &[(1, "exists c. rbt(res, c)")])
        .bug(BugKind::Segfault),
        Bench::new(
            "rbt/insert",
            Category::RedBlackTree,
            INSERT_PARTIAL,
            "insert",
            vec![nil_or(rbt), int_keys()],
        )
        .spec("exists c. rbt(t, c)", &[(0, "exists c. rbt(res, c)")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 2);
    }
}
