//! The 157 benchmark programs, one module per Table 1 category.

pub mod afwp;
pub mod avl;
pub mod binomial;
pub mod bst;
pub mod circular;
pub mod cyclist;
pub mod dll;
pub mod gh_dll;
pub mod gh_sll_iter;
pub mod gh_sll_rec;
pub mod gh_sorted;
pub mod glib_dll;
pub mod glib_sll;
pub mod memregion;
pub mod priority;
pub mod queue;
pub mod rbt;
pub mod sll;
pub mod sorted;
pub mod svcomp;
pub mod traversal;
