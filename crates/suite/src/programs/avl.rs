//! AVL-tree programs (Table 1 row "AVL Tree", 4 programs). The shape
//! predicates are height-free (`tree`/`bst`); exact height bookkeeping is
//! outside the symbolic-heap fragment (DESIGN.md §6).

use sling_lang::TreeKind;

use crate::predicates::tnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn avl(size: usize) -> ArgCand {
    ArgCand::Tree {
        layout: tnode_layout(),
        kind: TreeKind::Balanced,
        size,
    }
}

const AVL_BALANCE: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn height(t: TNode*) -> int {
    if (t == null) {
        return 0;
    }
    var hl: int = height(t->left);
    var hr: int = height(t->right);
    if (hl > hr) {
        return hl + 1;
    }
    return hr + 1;
}
fn rotateRight(t: TNode*) -> TNode* {
    var l: TNode* = t->left;
    t->left = l->right;
    l->right = t;
    return l;
}
fn rotateLeft(t: TNode*) -> TNode* {
    var r: TNode* = t->right;
    t->right = r->left;
    r->left = t;
    return r;
}
fn avlBalance(t: TNode*) -> TNode* {
    if (t == null) {
        return null;
    }
    var hl: int = height(t->left);
    var hr: int = height(t->right);
    if (hl > hr + 1) {
        return rotateRight(t);
    }
    if (hr > hl + 1) {
        return rotateLeft(t);
    }
    return t;
}
"#;

const DEL: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn findMin(t: TNode*) -> TNode* {
    if (t->left == null) {
        return t;
    }
    return findMin(t->left);
}
fn del(t: TNode*, k: int) -> TNode* {
    if (t == null) {
        return null;
    }
    if (k < t->data) {
        t->left = del(t->left, k);
        return t;
    }
    if (k > t->data) {
        t->right = del(t->right, k);
        return t;
    }
    if (t->left == null) {
        return t->right;
    }
    if (t->right == null) {
        return t->left;
    }
    var m: TNode* = findMin(t->right);
    t->data = m->data;
    t->right = del(t->right, m->data);
    return t;
}
"#;

const FIND_SMALLEST: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn findSmallest(t: TNode*) -> TNode* {
    if (t == null) {
        return null;
    }
    while @down (t->left != null) {
        t = t->left;
    }
    return t;
}
"#;

const INSERT: &str = r#"
struct TNode { left: TNode*; right: TNode*; data: int; }
fn insert(t: TNode*, k: int) -> TNode* {
    if (t == null) {
        return new TNode { data: k };
    }
    if (k < t->data) {
        t->left = insert(t->left, k);
    } else {
        t->right = insert(t->right, k);
    }
    return t;
}
"#;

/// The four AVL benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "avl/avlBalance",
            Category::AvlTree,
            AVL_BALANCE,
            "avlBalance",
            vec![nil_or(avl)],
        )
        .spec("tree(t)", &[(2, "tree(res)")]),
        Bench::new(
            "avl/del",
            Category::AvlTree,
            DEL,
            "del",
            vec![nil_or(avl), int_keys()],
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[(1, "tree(t) & res == t")],
        ),
        Bench::new(
            "avl/findSmallest",
            Category::AvlTree,
            FIND_SMALLEST,
            "findSmallest",
            vec![nil_or(avl)],
        )
        .spec(
            "tree(t)",
            &[
                (0, "emp & t == nil & res == nil"),
                (1, "tree(t) & res == t"),
            ],
        )
        .loop_inv("down", "tree(t)"),
        Bench::new(
            "avl/insert",
            Category::AvlTree,
            INSERT,
            "insert",
            vec![nil_or(avl), int_keys()],
        )
        .spec(
            "exists lo, hi. bst(t, lo, hi)",
            &[
                (
                    0,
                    "exists d. res -> TNode{left: nil, right: nil, data: d} & t == nil",
                ),
                (1, "tree(t) & res == t"),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 4);
    }
}
