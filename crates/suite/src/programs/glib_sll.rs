//! glib `GSList` (singly linked) programs (Table 1 row "glib/glist_SLL",
//! 22 programs). `sortMerge` ships both the §5.4 typo bug (returns the
//! wrong link, so the result is always null past the first node) and is
//! the program whose *correct* version exposes FBInfer's spurious
//! memory-leak warning.

use sling_lang::DataOrder;

use crate::predicates::gsnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn gslist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: gsnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

fn sorted(size: usize) -> ArgCand {
    ArgCand::List {
        layout: gsnode_layout(),
        order: DataOrder::Sorted,
        size,
        circular: false,
    }
}

const APPEND: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn append(list: GsNode*, k: int) -> GsNode* {
    var n: GsNode* = new GsNode { data: k };
    if (list == null) {
        return n;
    }
    var t: GsNode* = list;
    while @walk (t->next != null) {
        t = t->next;
    }
    t->next = n;
    return list;
}
"#;

const CONCAT: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn concat(a: GsNode*, b: GsNode*) -> GsNode* {
    if (a == null) {
        return b;
    }
    var t: GsNode* = a;
    while @walk (t->next != null) {
        t = t->next;
    }
    t->next = b;
    return a;
}
"#;

const COPY: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn copy(list: GsNode*) -> GsNode* {
    if (list == null) {
        return null;
    }
    var n: GsNode* = new GsNode { data: list->data };
    n->next = copy(list->next);
    return n;
}
"#;

const DEL_LINK: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn delLink(list: GsNode*, link: GsNode*) -> GsNode* {
    if (list == null) {
        return null;
    }
    if (list == link) {
        var rest: GsNode* = list->next;
        free(list);
        return rest;
    }
    list->next = delLink(list->next, link);
    return list;
}
"#;

const FIND: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn find(list: GsNode*, k: int) -> GsNode* {
    while @scan (list != null && list->data != k) {
        list = list->next;
    }
    return list;
}
"#;

const FREE_ALL: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn freeAll(list: GsNode*) {
    while @inv (list != null) {
        var t: GsNode* = list->next;
        free(list);
        list = t;
    }
    return;
}
"#;

const INDEX: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn index(list: GsNode*, k: int) -> int {
    var i: int = 0;
    while @scan (list != null) {
        if (list->data == k) {
            return i;
        }
        i = i + 1;
        list = list->next;
    }
    return -1;
}
"#;

const INSERT_AT_POS: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn insertAtPos(list: GsNode*, k: int, pos: int) -> GsNode* {
    if (pos <= 0 || list == null) {
        return new GsNode { next: list, data: k };
    }
    var cur: GsNode* = list;
    while @step (pos > 1 && cur->next != null) {
        cur = cur->next;
        pos = pos - 1;
    }
    var n: GsNode* = new GsNode { next: cur->next, data: k };
    cur->next = n;
    return list;
}
"#;

const INSERT_BEFORE: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn insertBefore(list: GsNode*, sibling: GsNode*, k: int) -> GsNode* {
    if (list == null || list == sibling) {
        return new GsNode { next: list, data: k };
    }
    var cur: GsNode* = list;
    while @scan (cur->next != null && cur->next != sibling) {
        cur = cur->next;
    }
    var n: GsNode* = new GsNode { next: cur->next, data: k };
    cur->next = n;
    return list;
}
"#;

const INSERT_SORTED: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn insertSorted(list: GsNode*, k: int) -> GsNode* {
    if (list == null || k <= list->data) {
        return new GsNode { next: list, data: k };
    }
    var cur: GsNode* = list;
    while @scan (cur->next != null && cur->next->data < k) {
        cur = cur->next;
    }
    var n: GsNode* = new GsNode { next: cur->next, data: k };
    cur->next = n;
    return list;
}
"#;

const LAST: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn last(list: GsNode*) -> GsNode* {
    if (list == null) {
        return null;
    }
    while @walk (list->next != null) {
        list = list->next;
    }
    return list;
}
"#;

const LENGTH: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn length(list: GsNode*) -> int {
    var n: int = 0;
    while @count (list != null) {
        n = n + 1;
        list = list->next;
    }
    return n;
}
"#;

const NTH: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn nth(list: GsNode*, n: int) -> GsNode* {
    while @step (n > 0 && list != null) {
        list = list->next;
        n = n - 1;
    }
    return list;
}
"#;

const NTH_DATA: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn nthData(list: GsNode*, n: int) -> int {
    while @step (n > 0 && list != null) {
        list = list->next;
        n = n - 1;
    }
    if (list == null) {
        return 0;
    }
    return list->data;
}
"#;

const POSITION: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn position(list: GsNode*, link: GsNode*) -> int {
    var i: int = 0;
    while @scan (list != null) {
        if (list == link) {
            return i;
        }
        i = i + 1;
        list = list->next;
    }
    return -1;
}
"#;

const PREPEND: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn prepend(list: GsNode*, k: int) -> GsNode* {
    return new GsNode { next: list, data: k };
}
"#;

const RM: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn rm(list: GsNode*, k: int) -> GsNode* {
    if (list == null) {
        return null;
    }
    if (list->data == k) {
        var rest: GsNode* = list->next;
        free(list);
        return rest;
    }
    list->next = rm(list->next, k);
    return list;
}
"#;

const RM_ALL: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn rmAll(list: GsNode*, k: int) -> GsNode* {
    if (list == null) {
        return null;
    }
    if (list->data == k) {
        var rest: GsNode* = list->next;
        free(list);
        return rmAll(rest, k);
    }
    list->next = rmAll(list->next, k);
    return list;
}
"#;

const RM_LINK: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn rmLink(list: GsNode*, link: GsNode*) -> GsNode* {
    if (list == null) {
        return null;
    }
    if (list == link) {
        var rest: GsNode* = list->next;
        link->next = null;
        return rest;
    }
    list->next = rmLink(list->next, link);
    return list;
}
"#;

const REVERSE: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn reverse(list: GsNode*) -> GsNode* {
    var r: GsNode* = null;
    while @inv (list != null) {
        var t: GsNode* = list->next;
        list->next = r;
        r = list;
        list = t;
    }
    return r;
}
"#;

/// §5.4's buggy `sortMerge`: the typo returns `list_next` (the detached
/// scratch link) instead of `list->next`, so the merged result is always
/// null — SLING's unexpected `res == nil` postcondition flags it.
const SORT_MERGE_BUG: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn sortMerge(a: GsNode*, b: GsNode*) -> GsNode* {
    var list: GsNode* = new GsNode;
    var l: GsNode* = list;
    while @merge (a != null && b != null) {
        if (a->data <= b->data) {
            l->next = a;
            a = a->next;
        } else {
            l->next = b;
            b = b->next;
        }
        l = l->next;
    }
    if (a != null) {
        l->next = a;
    } else {
        l->next = b;
    }
    var list_next: GsNode* = null;
    l->next = l->next;
    // BUG (the paper's typo): returns list_next instead of list->next.
    return list_next;
}
"#;

/// The correct merge sort (`sortReal`) — the program FBInfer flags with a
/// spurious leak at `l->next = null`.
const SORT_REAL: &str = r#"
struct GsNode { next: GsNode*; data: int; }
fn sortMergeReal(a: GsNode*, b: GsNode*) -> GsNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data <= b->data) {
        a->next = sortMergeReal(a->next, b);
        return a;
    }
    b->next = sortMergeReal(a, b->next);
    return b;
}
fn sortReal(list: GsNode*) -> GsNode* {
    if (list == null) {
        return null;
    }
    if (list->next == null) {
        return list;
    }
    var slow: GsNode* = list;
    var fast: GsNode* = list->next;
    while @split (fast != null && fast->next != null) {
        slow = slow->next;
        fast = fast->next->next;
    }
    var second: GsNode* = slow->next;
    slow->next = null;
    var a: GsNode* = sortReal(list);
    var b: GsNode* = sortReal(second);
    return sortMergeReal(a, b);
}
"#;

/// The twenty-two glib GSList benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(gslist)];
    let with_key = || vec![nil_or(gslist), int_keys()];
    vec![
        Bench::new(
            "glib_sll/append",
            Category::GlibSll,
            APPEND,
            "append",
            with_key(),
        )
        .spec(
            "gsll(list)",
            &[
                (
                    0,
                    "exists d. res -> GsNode{next: nil, data: d} & list == nil",
                ),
                (1, "gsll(list) & res == list"),
            ],
        )
        .loop_inv("walk", "gsll(list)"),
        Bench::new(
            "glib_sll/concat",
            Category::GlibSll,
            CONCAT,
            "concat",
            vec![nil_or(gslist), nil_or(gslist)],
        )
        .spec(
            "gsll(a) * gsll(b)",
            &[
                (0, "gsll(b) & a == nil & res == b"),
                (1, "gsll(a) & res == a"),
            ],
        )
        .loop_inv("walk", "gsll(a) * gsll(b)"),
        Bench::new("glib_sll/copy", Category::GlibSll, COPY, "copy", one()).spec(
            "gsll(list)",
            &[
                (0, "emp & list == nil & res == nil"),
                (1, "gsll(list) * gsll(res)"),
            ],
        ),
        Bench::new(
            "glib_sll/delLink",
            Category::GlibSll,
            DEL_LINK,
            "delLink",
            vec![nil_or(gslist), vec![ArgCand::Nil]],
        )
        .spec("gsll(list)", &[(0, "emp & list == nil & res == nil")])
        .frees(),
        Bench::new("glib_sll/find", Category::GlibSll, FIND, "find", with_key())
            .spec("gsll(list)", &[(0, "gsll(list) & res == list")])
            .loop_inv("scan", "gsll(list)"),
        Bench::new(
            "glib_sll/free",
            Category::GlibSll,
            FREE_ALL,
            "freeAll",
            one(),
        )
        .spec("gsll(list)", &[(0, "emp")])
        .frees(),
        Bench::new(
            "glib_sll/index",
            Category::GlibSll,
            INDEX,
            "index",
            with_key(),
        )
        .spec("gsll(list)", &[(1, "emp & list == nil")])
        .loop_inv("scan", "gsll(list)"),
        Bench::new(
            "glib_sll/insertAtPos",
            Category::GlibSll,
            INSERT_AT_POS,
            "insertAtPos",
            vec![
                nil_or(gslist),
                int_keys(),
                vec![ArgCand::Int(0), ArgCand::Int(2)],
            ],
        )
        .spec("gsll(list)", &[(1, "gsll(list) & res == list")])
        .loop_inv("step", "gsll(list)"),
        Bench::new(
            "glib_sll/insertBefore",
            Category::GlibSll,
            INSERT_BEFORE,
            "insertBefore",
            vec![nil_or(gslist), vec![ArgCand::Nil], int_keys()],
        )
        .spec("gsll(list)", &[(1, "gsll(list) & res == list")])
        .loop_inv("scan", "gsll(list)"),
        Bench::new(
            "glib_sll/insertSorted",
            Category::GlibSll,
            INSERT_SORTED,
            "insertSorted",
            vec![nil_or(sorted), int_keys()],
        )
        .spec("gsll(list)", &[(1, "gsll(list) & res == list")])
        .loop_inv("scan", "gsll(list)"),
        Bench::new("glib_sll/last", Category::GlibSll, LAST, "last", one())
            .spec(
                "gsll(list)",
                &[
                    (0, "emp & list == nil & res == nil"),
                    (
                        1,
                        "exists d. list -> GsNode{next: nil, data: d} & res == list",
                    ),
                ],
            )
            .loop_inv("walk", "gsll(list)"),
        Bench::new(
            "glib_sll/length",
            Category::GlibSll,
            LENGTH,
            "length",
            one(),
        )
        .spec("gsll(list)", &[(0, "emp & list == nil")])
        .loop_inv("count", "gsll(list)"),
        Bench::new("glib_sll/nth", Category::GlibSll, NTH, "nth", with_key())
            .spec("gsll(list)", &[(0, "gsll(list) & res == list")])
            .loop_inv("step", "gsll(list)"),
        Bench::new(
            "glib_sll/nthData",
            Category::GlibSll,
            NTH_DATA,
            "nthData",
            with_key(),
        )
        .spec("gsll(list)", &[(1, "emp & list == nil")])
        .loop_inv("step", "gsll(list)"),
        Bench::new(
            "glib_sll/position",
            Category::GlibSll,
            POSITION,
            "position",
            vec![nil_or(gslist), vec![ArgCand::Nil]],
        )
        .spec("gsll(list)", &[(1, "emp & list == nil")])
        .loop_inv("scan", "gsll(list)"),
        Bench::new(
            "glib_sll/prepend",
            Category::GlibSll,
            PREPEND,
            "prepend",
            with_key(),
        )
        .spec("gsll(list)", &[(0, "gsll(res)")]),
        Bench::new("glib_sll/rm", Category::GlibSll, RM, "rm", with_key())
            .spec("gsll(list)", &[(0, "gsll(res)")])
            .frees(),
        Bench::new(
            "glib_sll/rmAll",
            Category::GlibSll,
            RM_ALL,
            "rmAll",
            with_key(),
        )
        .spec("gsll(list)", &[(0, "gsll(res)")])
        .frees(),
        Bench::new(
            "glib_sll/rmLink",
            Category::GlibSll,
            RM_LINK,
            "rmLink",
            vec![nil_or(gslist), vec![ArgCand::Nil]],
        )
        .spec(
            "gsll(list)",
            &[
                (0, "emp & list == nil & res == nil"),
                (2, "gsll(list) & res == list"),
            ],
        ),
        Bench::new(
            "glib_sll/reverse",
            Category::GlibSll,
            REVERSE,
            "reverse",
            one(),
        )
        .spec("gsll(list)", &[(0, "gsll(res) & list == nil")])
        .loop_inv("inv", "gsll(list) * gsll(r)"),
        Bench::new(
            "glib_sll/sortMerge",
            Category::GlibSll,
            SORT_MERGE_BUG,
            "sortMerge",
            vec![nil_or(sorted), nil_or(sorted)],
        )
        .spec("gsll(a) * gsll(b)", &[(0, "gsll(res)")])
        .loop_inv("merge", "gsll(a) * gsll(b)"),
        Bench::new(
            "glib_sll/sortReal",
            Category::GlibSll,
            SORT_REAL,
            "sortReal",
            one(),
        )
        .spec(
            "gsll(list)",
            &[(1, "gsll(res) & res == list"), (2, "gsll(res)")],
        )
        .loop_inv("split", "gsll(list)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 22);
    }
}
