//! Circular-list programs (Table 1 row "Circular List", 4 programs).
//! `delFront`/`delBack` free nodes the caller still reaches — Table 1
//! reports their invariants as spurious (the LLDB quirk).

use sling_lang::DataOrder;

use crate::predicates::cnode_layout;
use crate::program::{int_keys, ArgCand, Bench, Category};

fn circ(size: usize) -> ArgCand {
    ArgCand::List {
        layout: cnode_layout(),
        order: DataOrder::Random,
        size,
        circular: true,
    }
}

fn circ_inputs() -> Vec<ArgCand> {
    vec![circ(1), circ(3), circ(super::super::program::DEFAULT_SIZE)]
}

const INSERT_FRONT: &str = r#"
struct CNode { next: CNode*; data: int; }
fn insertFront(x: CNode*, k: int) -> CNode* {
    var n: CNode* = new CNode { data: k };
    if (x == null) {
        n->next = n;
        return n;
    }
    // Insert after x and swap payloads so n becomes the logical front.
    n->next = x->next;
    x->next = n;
    var t: int = x->data;
    x->data = n->data;
    n->data = t;
    return x;
}
"#;

const INSERT_BACK: &str = r#"
struct CNode { next: CNode*; data: int; }
fn insertBack(x: CNode*, k: int) -> CNode* {
    var n: CNode* = new CNode { data: k };
    if (x == null) {
        n->next = n;
        return n;
    }
    var t: CNode* = x;
    while @walk (t->next != x) {
        t = t->next;
    }
    t->next = n;
    n->next = x;
    return x;
}
"#;

const DEL_FRONT: &str = r#"
struct CNode { next: CNode*; data: int; }
fn delFront(x: CNode*) -> CNode* {
    if (x == null) {
        return null;
    }
    if (x->next == x) {
        free(x);
        return null;
    }
    var second: CNode* = x->next;
    var t: CNode* = second;
    while @walk (t->next != x) {
        t = t->next;
    }
    t->next = second;
    free(x);
    return second;
}
"#;

const DEL_BACK: &str = r#"
struct CNode { next: CNode*; data: int; }
fn delBack(x: CNode*) -> CNode* {
    if (x == null) {
        return null;
    }
    if (x->next == x) {
        free(x);
        return null;
    }
    var t: CNode* = x;
    while @walk (t->next->next != x) {
        t = t->next;
    }
    var victim: CNode* = t->next;
    t->next = x;
    free(victim);
    return x;
}
"#;

/// The four circular-list benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "circular/insertFront",
            Category::CircularList,
            INSERT_FRONT,
            "insertFront",
            vec![
                {
                    let mut v = vec![ArgCand::Nil];
                    v.extend(circ_inputs());
                    v
                },
                int_keys(),
            ],
        )
        .spec(
            "cll(x)",
            &[(
                1,
                "exists u, d. x -> CNode{next: u, data: d} * clseg(u, x) & res == x",
            )],
        ),
        Bench::new(
            "circular/insertBack",
            Category::CircularList,
            INSERT_BACK,
            "insertBack",
            vec![
                {
                    let mut v = vec![ArgCand::Nil];
                    v.extend(circ_inputs());
                    v
                },
                int_keys(),
            ],
        )
        .spec(
            "cll(x)",
            &[(
                1,
                "exists t, u, d. clseg(x, t) * t -> CNode{next: u, data: d} \
                 * clseg(u, x) & res == x",
            )],
        )
        .loop_inv("walk", "clseg(x, t) * clseg(t, x)"),
        Bench::new(
            "circular/delFront",
            Category::CircularList,
            DEL_FRONT,
            "delFront",
            vec![circ_inputs()],
        )
        .spec("cll(x)", &[(2, "cll(res)")])
        .frees(),
        Bench::new(
            "circular/delBack",
            Category::CircularList,
            DEL_BACK,
            "delBack",
            vec![circ_inputs()],
        )
        .spec("cll(x)", &[(2, "cll(x) & res == x")])
        .frees(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 4);
    }
}
