//! glib `GList` (doubly linked) programs (Table 1 row "glib/glist_DLL",
//! 10 programs). `free` is the bold row's culprit: freed cells stay
//! observable through the caller's pointer, so its invariants are
//! spurious.

use sling_lang::DataOrder;

use crate::predicates::gnode_layout;
use crate::program::{int_keys, nil_or, ArgCand, Bench, Category};

fn glist(size: usize) -> ArgCand {
    ArgCand::List {
        layout: gnode_layout(),
        order: DataOrder::Random,
        size,
        circular: false,
    }
}

const FIND: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn find(list: GNode*, k: int) -> GNode* {
    while @scan (list != null && list->data != k) {
        list = list->next;
    }
    return list;
}
"#;

const FREE_ALL: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn freeAll(list: GNode*) {
    while @inv (list != null) {
        var t: GNode* = list->next;
        free(list);
        list = t;
    }
    return;
}
"#;

const INDEX: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn index(list: GNode*, k: int) -> int {
    var i: int = 0;
    while @scan (list != null) {
        if (list->data == k) {
            return i;
        }
        i = i + 1;
        list = list->next;
    }
    return -1;
}
"#;

const LAST: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn last(list: GNode*) -> GNode* {
    if (list == null) {
        return null;
    }
    while @walk (list->next != null) {
        list = list->next;
    }
    return list;
}
"#;

const LENGTH: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn length(list: GNode*) -> int {
    var n: int = 0;
    while @count (list != null) {
        n = n + 1;
        list = list->next;
    }
    return n;
}
"#;

const NTH: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn nth(list: GNode*, n: int) -> GNode* {
    while @step (n > 0 && list != null) {
        list = list->next;
        n = n - 1;
    }
    return list;
}
"#;

const NTH_DATA: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn nthData(list: GNode*, n: int) -> int {
    while @step (n > 0 && list != null) {
        list = list->next;
        n = n - 1;
    }
    if (list == null) {
        return 0;
    }
    return list->data;
}
"#;

const POSITION: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn position(list: GNode*, link: GNode*) -> int {
    var i: int = 0;
    while @scan (list != null) {
        if (list == link) {
            return i;
        }
        i = i + 1;
        list = list->next;
    }
    return -1;
}
"#;

const PREPEND: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn prepend(list: GNode*, k: int) -> GNode* {
    var n: GNode* = new GNode { next: list, data: k };
    if (list != null) {
        list->prev = n;
    }
    return n;
}
"#;

const REVERSE: &str = r#"
struct GNode { next: GNode*; prev: GNode*; data: int; }
fn reverse(list: GNode*) -> GNode* {
    var last: GNode* = null;
    while @inv (list != null) {
        last = list;
        list = last->next;
        last->next = last->prev;
        last->prev = list;
    }
    return last;
}
"#;

/// The ten glib GList benchmarks.
pub fn benches() -> Vec<Bench> {
    let one = || vec![nil_or(glist)];
    let with_key = || vec![nil_or(glist), int_keys()];
    vec![
        Bench::new("glib_dll/find", Category::GlibDll, FIND, "find", with_key())
            .spec(
                "exists p, u. gdll(list, p, u, nil)",
                &[(0, "exists p, u. gdll(list, p, u, nil) & res == list")],
            )
            .loop_inv("scan", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new(
            "glib_dll/free",
            Category::GlibDll,
            FREE_ALL,
            "freeAll",
            one(),
        )
        .spec("exists p, u. gdll(list, p, u, nil)", &[(0, "emp")])
        .frees(),
        Bench::new(
            "glib_dll/index",
            Category::GlibDll,
            INDEX,
            "index",
            with_key(),
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(1, "emp & list == nil")],
        )
        .loop_inv("scan", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new("glib_dll/last", Category::GlibDll, LAST, "last", one())
            .spec(
                "exists p, u. gdll(list, p, u, nil)",
                &[
                    (0, "emp & list == nil & res == nil"),
                    (
                        1,
                        "exists p, d. list -> GNode{next: nil, prev: p, data: d} & res == list",
                    ),
                ],
            )
            .loop_inv("walk", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new(
            "glib_dll/length",
            Category::GlibDll,
            LENGTH,
            "length",
            one(),
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(0, "emp & list == nil")],
        )
        .loop_inv("count", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new("glib_dll/nth", Category::GlibDll, NTH, "nth", with_key())
            .spec(
                "exists p, u. gdll(list, p, u, nil)",
                &[(0, "exists p, u. gdll(list, p, u, nil) & res == list")],
            )
            .loop_inv("step", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new(
            "glib_dll/nthData",
            Category::GlibDll,
            NTH_DATA,
            "nthData",
            with_key(),
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(0, "emp & list == nil")],
        )
        .loop_inv("step", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new(
            "glib_dll/position",
            Category::GlibDll,
            POSITION,
            "position",
            vec![nil_or(glist), vec![ArgCand::Nil]],
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(1, "emp & list == nil")],
        )
        .loop_inv("scan", "exists p, u. gdll(list, p, u, nil)"),
        Bench::new(
            "glib_dll/prepend",
            Category::GlibDll,
            PREPEND,
            "prepend",
            with_key(),
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(0, "exists u. gdll(res, nil, u, nil)")],
        ),
        Bench::new(
            "glib_dll/reverse",
            Category::GlibDll,
            REVERSE,
            "reverse",
            one(),
        )
        .spec(
            "exists p, u. gdll(list, p, u, nil)",
            &[(0, "emp & list == nil")],
        )
        .loop_inv("inv", "exists p, u, q, v. gdll(list, p, u, nil)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 10);
    }
}
