//! The assembled corpus: all 157 programs of Table 1.

use crate::program::{Bench, Category};
use crate::programs;

/// Every benchmark, grouped in Table 1 row order.
pub fn all_benches() -> Vec<Bench> {
    let mut out = Vec::with_capacity(157);
    out.extend(programs::sll::benches());
    out.extend(programs::sorted::benches());
    out.extend(programs::dll::benches());
    out.extend(programs::circular::benches());
    out.extend(programs::bst::benches());
    out.extend(programs::avl::benches());
    out.extend(programs::priority::benches());
    out.extend(programs::rbt::benches());
    out.extend(programs::traversal::benches());
    out.extend(programs::glib_dll::benches());
    out.extend(programs::glib_sll::benches());
    out.extend(programs::queue::benches());
    out.extend(programs::memregion::benches());
    out.extend(programs::binomial::benches());
    out.extend(programs::svcomp::benches());
    out.extend(programs::gh_sll_iter::benches());
    out.extend(programs::gh_sll_rec::benches());
    out.extend(programs::gh_dll::benches());
    out.extend(programs::gh_sorted::benches());
    out.extend(programs::afwp::sll_benches());
    out.extend(programs::afwp::dll_benches());
    out.extend(programs::cyclist::benches());
    out
}

/// The benchmarks of one category.
pub fn benches_of(cat: Category) -> Vec<Bench> {
    all_benches()
        .into_iter()
        .filter(|b| b.category == cat)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn full_corpus_size() {
        assert_eq!(all_benches().len(), 157, "the paper evaluates 157 programs");
    }

    #[test]
    fn per_category_counts_match_table1() {
        let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
        for b in all_benches() {
            *counts.entry(b.category).or_default() += 1;
        }
        let expect = [
            (Category::Sll, 8),
            (Category::SortedList, 10),
            (Category::Dll, 12),
            (Category::CircularList, 4),
            (Category::BinarySearchTree, 5),
            (Category::AvlTree, 4),
            (Category::PriorityTree, 4),
            (Category::RedBlackTree, 2),
            (Category::TreeTraversal, 5),
            (Category::GlibDll, 10),
            (Category::GlibSll, 22),
            (Category::OpenBsdQueue, 6),
            (Category::MemoryRegion, 1),
            (Category::BinomialHeap, 2),
            (Category::SvComp, 7),
            (Category::GrasshopperSllIter, 8),
            (Category::GrasshopperSllRec, 8),
            (Category::GrasshopperDll, 8),
            (Category::GrasshopperSorted, 14),
            (Category::AfwpSll, 11),
            (Category::AfwpDll, 2),
            (Category::Cyclist, 4),
        ];
        for (cat, n) in expect {
            assert_eq!(counts.get(&cat), Some(&n), "category {cat:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for b in all_benches() {
            assert!(seen.insert(b.name), "duplicate bench name {}", b.name);
        }
    }

    #[test]
    fn five_programs_carry_seeded_bugs() {
        let starred: Vec<&str> = all_benches()
            .iter()
            .filter(|b| b.bug.is_some())
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert_eq!(
            starred,
            vec![
                "sorted/quickSort",
                "bst/rmRoot",
                "rbt/del",
                "traversal/tree2listIter",
                "gh_sorted/mergeSort"
            ],
            "exactly the paper's ∗ programs"
        );
    }

    #[test]
    fn all_sources_parse_and_check() {
        for b in all_benches() {
            let p = sling_lang::parse_program(b.source)
                .unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            sling_lang::check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
            assert!(
                p.func(sling_logic::Symbol::intern(b.target)).is_some(),
                "{}: target `{}` missing",
                b.name,
                b.target
            );
        }
    }

    #[test]
    fn documented_properties_parse() {
        use crate::program::Property;
        for b in all_benches() {
            for prop in &b.properties {
                match prop {
                    Property::Spec { pre, posts } => {
                        sling_logic::parse_formula(pre)
                            .unwrap_or_else(|e| panic!("{}: bad pre: {e}", b.name));
                        for (_, post) in posts.iter() {
                            sling_logic::parse_formula(post)
                                .unwrap_or_else(|e| panic!("{}: bad post: {e}", b.name));
                        }
                    }
                    Property::LoopInv { formula, .. } => {
                        sling_logic::parse_formula(formula)
                            .unwrap_or_else(|e| panic!("{}: bad loop inv: {e}", b.name));
                    }
                }
            }
        }
    }

    #[test]
    fn total_loc_is_comparable_to_paper() {
        let total: usize = all_benches().iter().map(|b| b.loc()).sum();
        // The paper's corpus is 4649 LoC of C; ours should be in the same
        // ballpark (MiniC is a little more verbose per construct).
        assert!(total > 2000, "corpus too small: {total}");
    }
}
