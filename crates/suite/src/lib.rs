//! The SLING benchmark corpus and evaluation harness.
//!
//! This crate reproduces the paper's evaluation (§5):
//!
//! * [`corpus::all_benches`] — the 157 MiniC benchmark programs of
//!   Table 1, in 22 categories, with their input generators, documented
//!   ("ground truth") properties, and seeded bugs;
//! * [`predicates`] — the per-category inductive predicate library;
//! * [`matcher`] — the automated inferred-vs-documented property matcher
//!   (the paper checked by hand; see DESIGN.md §4);
//! * [`eval`] — the harness that runs SLING over the corpus and
//!   regenerates Table 1 and Table 2 (against the `sling-biabduce`
//!   baseline).
//!
//! # Example
//!
//! Run one benchmark end to end:
//!
//! ```
//! use sling_suite::{corpus, eval};
//!
//! let bench = corpus::all_benches()
//!     .into_iter()
//!     .find(|b| b.name == "sll/reverse")
//!     .unwrap();
//! let run = eval::run_bench(&bench, &eval::EvalConfig::default());
//! assert!(run.report.invariant_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod eval;
pub mod fixtures;
pub mod matcher;
pub mod predicates;
pub mod program;
pub mod programs;
pub mod report;

pub use program::{ArgCand, Bench, BugKind, Category, Property};
