//! Plain-text rendering of Tables 1 and 2 in the paper's layout.

use std::fmt::Write as _;

use crate::eval::{Table1Row, Table2Row};

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>4} {:>6} {:>6} {:>7} {:>10} {:>7} {:>9} {:>7} {:>6} {:>6}",
        "Category",
        "Prog",
        "LoC",
        "iLocs",
        "Traces",
        "Invs(spur)",
        "A/S/X",
        "Time(s)",
        "Single",
        "Pred",
        "Pure"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0.0f64);
    for r in rows {
        let invs = if r.spurious > 0 {
            format!("{}({})", r.invs, r.spurious)
        } else {
            format!("{}", r.invs)
        };
        let _ = writeln!(
            out,
            "{:<24} {:>4} {:>6} {:>6} {:>7} {:>10} {:>7} {:>9.2} {:>6.2} {:>6.2} {:>6.2}",
            r.category.label(),
            r.programs,
            r.loc,
            r.ilocs,
            r.traces,
            invs,
            format!("{}/{}/{}", r.a, r.s, r.x),
            r.time,
            r.avg_single,
            r.avg_pred,
            r.avg_pure,
        );
        totals.0 += r.programs;
        totals.1 += r.loc;
        totals.2 += r.ilocs;
        totals.3 += r.traces;
        totals.4 += r.invs;
        totals.5 += r.spurious;
        totals.6 += r.time;
    }
    let _ = writeln!(out, "{}", "-".repeat(110));
    let _ = writeln!(
        out,
        "{:<24} {:>4} {:>6} {:>6} {:>7} {:>10} {:>7} {:>9.2}",
        "Total",
        totals.0,
        totals.1,
        totals.2,
        totals.3,
        format!("{}({})", totals.4, totals.5),
        "",
        totals.6,
    );
    out
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>6} {:>6} {:>7} {:>8}",
        "Category", "Total", "Both", "S2", "SLING", "Neither"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    let mut t = (0usize, 0usize, 0usize, 0usize, 0usize);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>6} {:>6} {:>7} {:>8}",
            r.category.label(),
            r.total,
            r.both,
            r.s2_only,
            r.sling_only,
            r.neither
        );
        t.0 += r.total;
        t.1 += r.both;
        t.2 += r.s2_only;
        t.3 += r.sling_only;
        t.4 += r.neither;
    }
    let _ = writeln!(out, "{}", "-".repeat(64));
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>6} {:>6} {:>7} {:>8}",
        "Total Sum", t.0, t.1, t.2, t.3, t.4
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Category;

    #[test]
    fn table1_renders() {
        let rows = vec![Table1Row {
            category: Category::Sll,
            programs: 8,
            loc: 168,
            ilocs: 26,
            traces: 226,
            invs: 30,
            spurious: 0,
            a: 8,
            s: 0,
            x: 0,
            time: 1.5,
            avg_single: 0.3,
            avg_pred: 0.8,
            avg_pure: 1.0,
        }];
        let text = render_table1(&rows);
        assert!(text.contains("SLL"));
        assert!(text.contains("8/0/0"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn table2_renders() {
        let rows = vec![Table2Row {
            category: Category::Dll,
            total: 13,
            both: 0,
            s2_only: 0,
            sling_only: 13,
            neither: 0,
        }];
        let text = render_table2(&rows);
        assert!(text.contains("DLL"));
        assert!(text.contains("13"));
    }
}
