//! The predicate library: inductive heap predicates per benchmark
//! category (the paper's §5.2 — "we adopt the predicate definitions given
//! for that data \[structure\] from the benchmark programs").
//!
//! Each category has its own record vocabulary (mirroring the different C
//! struct layouts of VCDryad / GRASShopper / glib / the Linux kernel) and
//! a matching set of predicates. Layout helpers give the input generators
//! the field indices of each structural role.

use sling_lang::{ListLayout, TreeLayout};
use sling_logic::{parse_predicates, PredEnv, Symbol};

use crate::program::Category;

/// Singly linked lists over `SNode { next, data }`.
pub const SLL_PREDS: &str = r#"
pred sll(x: SNode*) :=
    emp & x == nil
  | exists u, d. x -> SNode{next: u, data: d} * sll(u);

pred lseg(x: SNode*, y: SNode*) :=
    emp & x == y
  | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);
"#;

/// Sorted lists over `SNode { next, data }`.
pub const SORTED_PREDS: &str = r#"
pred sll(x: SNode*) :=
    emp & x == nil
  | exists u, d. x -> SNode{next: u, data: d} * sll(u);

pred lseg(x: SNode*, y: SNode*) :=
    emp & x == y
  | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);

pred srtl(x: SNode*, min: int) :=
    emp & x == nil
  | exists u, d. x -> SNode{next: u, data: d} * srtl(u, d) & min <= d;
"#;

/// Doubly linked lists over `DNode { next, prev, data }` (the paper's
/// running example).
pub const DLL_PREDS: &str = r#"
pred dll(hd: DNode*, pr: DNode*, tl: DNode*, nx: DNode*) :=
    emp & hd == nx & pr == tl
  | exists u, d. hd -> DNode{next: u, prev: pr, data: d} * dll(u, hd, tl, nx);
"#;

/// Circular singly linked lists over `CNode { next, data }`.
pub const CIRCULAR_PREDS: &str = r#"
pred clseg(x: CNode*, y: CNode*) :=
    emp & x == y
  | exists u, d. x -> CNode{next: u, data: d} * clseg(u, y);

pred cll(x: CNode*) :=
    emp & x == nil
  | exists u, d. x -> CNode{next: u, data: d} * clseg(u, x);
"#;

/// Binary (search) trees over `TNode { left, right, data }`.
pub const TREE_PREDS: &str = r#"
pred tree(t: TNode*) :=
    emp & t == nil
  | exists l, r, d. t -> TNode{left: l, right: r, data: d} * tree(l) * tree(r);

pred bst(t: TNode*, lo: int, hi: int) :=
    emp & t == nil
  | exists l, r, d. t -> TNode{left: l, right: r, data: d}
      * bst(l, lo, d) * bst(r, d, hi) & lo <= d & d <= hi;

pred rlist(t: TNode*) :=
    emp & t == nil
  | exists r, d. t -> TNode{left: nil, right: r, data: d} * rlist(r);
"#;

/// Priority (heap-ordered) trees over `PNode { left, right, data }`: every
/// key is bounded by `top`.
pub const PRIORITY_PREDS: &str = r#"
pred ptree(t: PNode*, top: int) :=
    emp & t == nil
  | exists l, r, d. t -> PNode{left: l, right: r, data: d}
      * ptree(l, d) * ptree(r, d) & d <= top;
"#;

/// Red-black trees over `RNode { left, right, color, data }`; `c` is the
/// root color (0 black, 1 red) and red nodes have black children.
pub const RBT_PREDS: &str = r#"
pred rbt(t: RNode*, c: int) :=
    emp & t == nil & c == 0
  | exists l, r, cl, cr, d. t -> RNode{left: l, right: r, color: c, data: d}
      * rbt(l, cl) * rbt(r, cr) & c == 0
  | exists l, r, d. t -> RNode{left: l, right: r, color: c, data: d}
      * rbt(l, 0) * rbt(r, 0) & c == 1;
"#;

/// glib `GList` (doubly linked) over `GNode { next, prev, data }`.
pub const GLIB_DLL_PREDS: &str = r#"
pred gdll(hd: GNode*, pr: GNode*, tl: GNode*, nx: GNode*) :=
    emp & hd == nx & pr == tl
  | exists u, d. hd -> GNode{next: u, prev: pr, data: d} * gdll(u, hd, tl, nx);
"#;

/// glib `GSList` (singly linked) over `GsNode { next, data }`.
pub const GLIB_SLL_PREDS: &str = r#"
pred gsll(x: GsNode*) :=
    emp & x == nil
  | exists u, d. x -> GsNode{next: u, data: d} * gsll(u);

pred gslseg(x: GsNode*, y: GsNode*) :=
    emp & x == y
  | exists u, d. x -> GsNode{next: u, data: d} * gslseg(u, y);
"#;

/// OpenBSD `TAILQ`-style queues: a `Queue { first, last }` header over
/// `QNode { next, data }` cells. `queue(h, t)` is a non-empty segment
/// from `h` whose last node is `t`; `wq(q)` is a well-formed header.
pub const QUEUE_PREDS: &str = r#"
pred qseg(x: QNode*, y: QNode*) :=
    emp & x == y
  | exists u, d. x -> QNode{next: u, data: d} * qseg(u, y);

pred queue(h: QNode*, t: QNode*) :=
    exists d. h -> QNode{next: nil, data: d} & h == t
  | exists u, d. h -> QNode{next: u, data: d} * queue(u, t);

pred wq(q: Queue*) :=
    q -> Queue{first: nil, last: nil}
  | exists f, l. q -> Queue{first: f, last: l} * queue(f, l);
"#;

/// Linux-style memory regions over
/// `MRegion { next, prev, start, size }` — a doubly linked list of
/// descriptors.
pub const MEMREGION_PREDS: &str = r#"
pred mrdll(hd: MRegion*, pr: MRegion*, tl: MRegion*, nx: MRegion*) :=
    emp & hd == nx & pr == tl
  | exists u, s, z. hd -> MRegion{next: u, prev: pr, start: s, size: z}
      * mrdll(u, hd, tl, nx);
"#;

/// Binomial heaps over `BNode { child, sibling, degree, key }`.
pub const BINOMIAL_PREDS: &str = r#"
pred bheap(x: BNode*) :=
    emp & x == nil
  | exists c, s, d, k. x -> BNode{child: c, sibling: s, degree: d, key: k}
      * bheap(c) * bheap(s);
"#;

/// SV-COMP master/slave nested lists: every `Master` owns a `Slave` list.
pub const SVCOMP_PREDS: &str = r#"
pred slist(s: Slave*) :=
    emp & s == nil
  | exists u. s -> Slave{next: u} * slist(u);

pred mlist(m: Master*) :=
    emp & m == nil
  | exists n, s. m -> Master{next: n, slave: s} * slist(s) * mlist(n);
"#;

/// GRASShopper singly linked lists over `HNode { next, data }`.
pub const GRASSHOPPER_SLL_PREDS: &str = r#"
pred hsll(x: HNode*) :=
    emp & x == nil
  | exists u, d. x -> HNode{next: u, data: d} * hsll(u);

pred hlseg(x: HNode*, y: HNode*) :=
    emp & x == y
  | exists u, d. x -> HNode{next: u, data: d} * hlseg(u, y);
"#;

/// GRASShopper doubly linked lists over `HdNode { next, prev, data }`.
pub const GRASSHOPPER_DLL_PREDS: &str = r#"
pred hdll(hd: HdNode*, pr: HdNode*, tl: HdNode*, nx: HdNode*) :=
    emp & hd == nx & pr == tl
  | exists u, d. hd -> HdNode{next: u, prev: pr, data: d} * hdll(u, hd, tl, nx);
"#;

/// GRASShopper sorted lists over `HNode { next, data }`.
pub const GRASSHOPPER_SORTED_PREDS: &str = r#"
pred hsll(x: HNode*) :=
    emp & x == nil
  | exists u, d. x -> HNode{next: u, data: d} * hsll(u);

pred hlseg(x: HNode*, y: HNode*) :=
    emp & x == y
  | exists u, d. x -> HNode{next: u, data: d} * hlseg(u, y);

pred hsrtl(x: HNode*, min: int) :=
    emp & x == nil
  | exists u, d. x -> HNode{next: u, data: d} * hsrtl(u, d) & min <= d;
"#;

/// AFWP singly linked lists over `ANode { next, data }`.
pub const AFWP_SLL_PREDS: &str = r#"
pred asll(x: ANode*) :=
    emp & x == nil
  | exists u, d. x -> ANode{next: u, data: d} * asll(u);

pred alseg(x: ANode*, y: ANode*) :=
    emp & x == y
  | exists u, d. x -> ANode{next: u, data: d} * alseg(u, y);
"#;

/// AFWP doubly linked lists over `AdNode { next, prev }`; `adsll` reads
/// the same nodes singly (the `dll_fix` benchmark mixes both views).
pub const AFWP_DLL_PREDS: &str = r#"
pred adll(hd: AdNode*, pr: AdNode*, tl: AdNode*, nx: AdNode*) :=
    emp & hd == nx & pr == tl
  | exists u. hd -> AdNode{next: u, prev: pr} * adll(u, hd, tl, nx);

pred adsll(x: AdNode*) :=
    emp & x == nil
  | exists u, p. x -> AdNode{next: u, prev: p} * adsll(u);
"#;

/// Cyclist benchmarks: Schorr-Waite trees with mark bits, frame stacks,
/// composite trees with parent pointers, and a collection/iterator pair.
pub const CYCLIST_PREDS: &str = r#"
pred swtree(t: SwNode*) :=
    emp & t == nil
  | exists l, r, m. t -> SwNode{left: l, right: r, mark: m} * swtree(l) * swtree(r);

pred frames(s: Frame*) :=
    emp & s == nil
  | exists n, v. s -> Frame{below: n, val: v} * frames(n);

pred comp(t: CompNode*, p: CompNode*) :=
    emp & t == nil
  | exists l, r, d. t -> CompNode{left: l, right: r, parent: p, data: d}
      * comp(l, t) * comp(r, t);

pred items(x: Item*) :=
    emp & x == nil
  | exists u, d. x -> Item{next: u, data: d} * items(u);
"#;

/// The predicate source for a category.
pub fn predicates_source(cat: Category) -> &'static str {
    match cat {
        Category::Sll | Category::TreeTraversal => SLL_AND_TREE,
        Category::SortedList => SORTED_PREDS,
        Category::Dll => DLL_PREDS,
        Category::CircularList => CIRCULAR_PREDS,
        Category::BinarySearchTree | Category::AvlTree => TREE_PREDS,
        Category::PriorityTree => PRIORITY_PREDS,
        Category::RedBlackTree => RBT_PREDS,
        Category::GlibDll => GLIB_DLL_PREDS,
        Category::GlibSll => GLIB_SLL_PREDS,
        Category::OpenBsdQueue => QUEUE_PREDS,
        Category::MemoryRegion => MEMREGION_PREDS,
        Category::BinomialHeap => BINOMIAL_PREDS,
        Category::SvComp => SVCOMP_PREDS,
        Category::GrasshopperSllIter | Category::GrasshopperSllRec => GRASSHOPPER_SLL_PREDS,
        Category::GrasshopperDll => GRASSHOPPER_DLL_PREDS,
        Category::GrasshopperSorted => GRASSHOPPER_SORTED_PREDS,
        Category::AfwpSll => AFWP_SLL_PREDS,
        Category::AfwpDll => AFWP_DLL_PREDS,
        Category::Cyclist => CYCLIST_PREDS,
    }
}

/// SLL predicates for the plain-SLL category; tree-traversal programs use
/// trees *and* the right-spine list view.
const SLL_AND_TREE: &str = r#"
pred sll(x: SNode*) :=
    emp & x == nil
  | exists u, d. x -> SNode{next: u, data: d} * sll(u);

pred lseg(x: SNode*, y: SNode*) :=
    emp & x == y
  | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);

pred tree(t: TNode*) :=
    emp & t == nil
  | exists l, r, d. t -> TNode{left: l, right: r, data: d} * tree(l) * tree(r);

pred rlist(t: TNode*) :=
    emp & t == nil
  | exists r, d. t -> TNode{left: nil, right: r, data: d} * rlist(r);
"#;

/// Parses the predicate set of a category.
///
/// # Panics
///
/// Panics on malformed built-in predicate text (covered by tests).
pub fn pred_env(cat: Category) -> PredEnv {
    let mut env = PredEnv::new();
    for def in parse_predicates(predicates_source(cat)).expect("built-in predicates parse") {
        env.define(def).expect("no duplicate built-ins");
    }
    env
}

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// `SNode { next, data }` layout.
pub fn snode_layout() -> ListLayout {
    ListLayout {
        ty: sym("SNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `DNode { next, prev, data }` layout.
pub fn dnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("DNode"),
        nfields: 3,
        next: 0,
        prev: Some(1),
        data: Some(2),
    }
}

/// `CNode { next, data }` layout.
pub fn cnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("CNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `GNode { next, prev, data }` layout (glib GList).
pub fn gnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("GNode"),
        nfields: 3,
        next: 0,
        prev: Some(1),
        data: Some(2),
    }
}

/// `GsNode { next, data }` layout (glib GSList).
pub fn gsnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("GsNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `QNode { next, data }` layout.
pub fn qnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("QNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `HNode { next, data }` layout (GRASShopper SLL/sorted).
pub fn hnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("HNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `HdNode { next, prev, data }` layout (GRASShopper DLL).
pub fn hdnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("HdNode"),
        nfields: 3,
        next: 0,
        prev: Some(1),
        data: Some(2),
    }
}

/// `ANode { next, data }` layout (AFWP).
pub fn anode_layout() -> ListLayout {
    ListLayout {
        ty: sym("ANode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

/// `AdNode { next, prev }` layout (AFWP DLL).
pub fn adnode_layout() -> ListLayout {
    ListLayout {
        ty: sym("AdNode"),
        nfields: 2,
        next: 0,
        prev: Some(1),
        data: None,
    }
}

/// `MRegion { next, prev, start, size }` layout.
pub fn mregion_layout() -> ListLayout {
    ListLayout {
        ty: sym("MRegion"),
        nfields: 4,
        next: 0,
        prev: Some(1),
        data: Some(2),
    }
}

/// `TNode { left, right, data }` layout.
pub fn tnode_layout() -> TreeLayout {
    TreeLayout {
        ty: sym("TNode"),
        nfields: 3,
        left: 0,
        right: 1,
        parent: None,
        data: Some(2),
        color: None,
    }
}

/// `PNode { left, right, data }` layout.
pub fn pnode_layout() -> TreeLayout {
    TreeLayout {
        ty: sym("PNode"),
        nfields: 3,
        left: 0,
        right: 1,
        parent: None,
        data: Some(2),
        color: None,
    }
}

/// `RNode { left, right, color, data }` layout.
pub fn rnode_layout() -> TreeLayout {
    TreeLayout {
        ty: sym("RNode"),
        nfields: 4,
        left: 0,
        right: 1,
        parent: None,
        data: Some(3),
        color: Some(2),
    }
}

/// `SwNode { left, right, mark }` layout (Schorr-Waite).
pub fn swnode_layout() -> TreeLayout {
    TreeLayout {
        ty: sym("SwNode"),
        nfields: 3,
        left: 0,
        right: 1,
        parent: None,
        data: None,
        color: Some(2),
    }
}

/// `CompNode { left, right, parent, data }` layout (Cyclist composite).
pub fn compnode_layout() -> TreeLayout {
    TreeLayout {
        ty: sym("CompNode"),
        nfields: 4,
        left: 0,
        right: 1,
        parent: Some(2),
        data: Some(3),
        color: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_category_predicates_parse() {
        for &cat in Category::all() {
            let env = pred_env(cat);
            assert!(!env.is_empty(), "{cat:?} has no predicates");
        }
    }

    #[test]
    fn dll_pred_matches_paper() {
        let env = pred_env(Category::Dll);
        let dll = env.get(Symbol::intern("dll")).expect("dll defined");
        assert_eq!(dll.arity(), 4);
        assert_eq!(dll.cases.len(), 2);
    }

    #[test]
    fn rbt_pred_has_three_cases() {
        let env = pred_env(Category::RedBlackTree);
        let rbt = env.get(Symbol::intern("rbt")).expect("rbt defined");
        assert_eq!(rbt.cases.len(), 3);
    }
}
