//! The evaluation harness: runs SLING (and the baseline) over the corpus
//! and aggregates the rows of Table 1 and Table 2.
//!
//! Each benchmark is served by a [`sling::Engine`]; corpus runs share
//! one checker cache per category (categories share a predicate library
//! and data-structure shapes, so entailments memoized for one program
//! routinely answer queries from the next).

use std::collections::BTreeMap;
use std::sync::Arc;

use sling::{AnalysisRequest, CheckCache, Engine, InvariantGrade, Report, SlingConfig};
use sling_lang::{check_program, parse_program, Location, Program};
use sling_logic::{parse_formula, Symbol};

use crate::corpus::all_benches;
use crate::matcher::subsumes;
use crate::program::{Bench, BugKind, Category, Property};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// SLING configuration.
    pub sling: SlingConfig,
    /// RNG seed for input generation (fixed for reproducibility).
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            sling: SlingConfig::default(),
            seed: 0x51_1e6,
        }
    }
}

/// Trace-coverage classification (the paper's A/S/X column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Traces (and invariants) at every declared location, none spurious.
    All,
    /// Some locations covered, or spurious invariants produced.
    Some,
    /// No usable traces (the `∗` programs).
    None,
}

/// The result of running SLING on one benchmark.
#[derive(Debug)]
pub struct BenchRun {
    /// The benchmark.
    pub bench: Bench,
    /// SLING's analysis report.
    pub report: Report,
    /// Coverage classification.
    pub coverage: Coverage,
    /// Which documented properties SLING found (parallel to
    /// `bench.properties`).
    pub sling_found: Vec<bool>,
    /// Which documented properties the baseline found.
    pub baseline_found: Vec<bool>,
}

/// Parses and checks a benchmark's source.
///
/// # Panics
///
/// Panics if a corpus source is malformed (covered by corpus tests).
pub fn compile(bench: &Bench) -> Program {
    let program =
        parse_program(bench.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name));
    check_program(&program).unwrap_or_else(|e| panic!("{}: type error: {e}", bench.name));
    program
}

/// Builds the analysis engine for one benchmark, optionally sharing a
/// checker cache with sibling engines.
///
/// # Panics
///
/// Panics if a corpus source is malformed (covered by corpus tests).
pub fn engine_for(bench: &Bench, config: &EvalConfig, cache: Option<Arc<CheckCache>>) -> Engine {
    let mut builder = Engine::builder()
        .program(compile(bench))
        .pred_env(crate::predicates::pred_env(bench.category))
        .config(config.sling);
    if let Some(cache) = cache {
        builder = builder.shared_cache(cache);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("{}: engine build error: {e}", bench.name))
}

/// Runs SLING and the baseline on one benchmark.
pub fn run_bench(bench: &Bench, config: &EvalConfig) -> BenchRun {
    run_bench_cached(bench, config, None)
}

/// [`run_bench`] with an optional shared checker cache.
pub fn run_bench_cached(
    bench: &Bench,
    config: &EvalConfig,
    cache: Option<Arc<CheckCache>>,
) -> BenchRun {
    let engine = engine_for(bench, config, cache);
    let target = Symbol::intern(bench.target);
    let request = AnalysisRequest::new(target).inputs(bench.inputs(config.seed));

    let report = engine
        .analyze(&request)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

    // The paper's ∗ programs yield no usable traces; their LLDB driver
    // died before any breakpoint. Our embedded tracer survives to the
    // fault, so to reproduce Table 1's accounting, segfault-marked
    // programs are classified X regardless of the partial snapshots (see
    // EXPERIMENTS.md).
    let coverage = if bench.bug == Some(BugKind::Segfault) {
        Coverage::None
    } else {
        classify(&report)
    };

    let sling_found: Vec<bool> = bench
        .properties
        .iter()
        .map(|p| {
            if coverage == Coverage::None {
                false
            } else {
                sling_finds(&report, p)
            }
        })
        .collect();

    let baseline = sling_biabduce::infer_spec(engine.program(), target, engine.preds()).ok();
    let baseline_found: Vec<bool> = bench
        .properties
        .iter()
        .map(|p| {
            baseline
                .as_ref()
                .map(|s| baseline_finds(s, p))
                .unwrap_or(false)
        })
        .collect();

    BenchRun {
        bench: bench.clone(),
        report,
        coverage,
        sling_found,
        baseline_found,
    }
}

fn classify(report: &Report) -> Coverage {
    let reached: Vec<Location> = report.locations.iter().map(|r| r.location).collect();
    if reached.is_empty() || report.invariant_count() == 0 {
        return Coverage::None;
    }
    let all_reached = report
        .declared_locations
        .iter()
        .all(|l| reached.contains(l));
    let any_spurious = report.spurious_count() > 0;
    if all_reached && !any_spurious {
        Coverage::All
    } else {
        Coverage::Some
    }
}

/// Does SLING's report contain (non-spurious) invariants subsuming the
/// documented property?
pub fn sling_finds(report: &Report, prop: &Property) -> bool {
    match prop {
        Property::Spec { pre, posts } => {
            let pre_f = parse_formula(pre).expect("documented formulas parse");
            let pre_ok = report
                .at(Location::Entry)
                .map(|r| {
                    r.invariants
                        .iter()
                        .any(|i| !i.spurious && subsumes(&i.formula, &pre_f))
                })
                .unwrap_or(false);
            if !pre_ok {
                return false;
            }
            posts.iter().all(|(exit, post)| {
                let post_f = parse_formula(post).expect("documented formulas parse");
                report
                    .at(Location::Exit(*exit))
                    .map(|r| {
                        r.invariants
                            .iter()
                            .any(|i| !i.spurious && subsumes(&i.formula, &post_f))
                    })
                    .unwrap_or(false)
            })
        }
        Property::LoopInv { label, formula } => {
            let f = parse_formula(formula).expect("documented formulas parse");
            report
                .at(Location::LoopHead(Symbol::intern(label)))
                .map(|r| {
                    r.invariants
                        .iter()
                        .any(|i| !i.spurious && subsumes(&i.formula, &f))
                })
                .unwrap_or(false)
        }
    }
}

/// Does the baseline's spec subsume the documented property?
pub fn baseline_finds(spec: &sling_biabduce::Spec, prop: &Property) -> bool {
    match prop {
        Property::Spec { pre, posts } => {
            let pre_f = parse_formula(pre).expect("documented formulas parse");
            if !subsumes(&spec.pre, &pre_f) {
                return false;
            }
            posts.iter().all(|(exit, post)| {
                let post_f = parse_formula(post).expect("documented formulas parse");
                spec.posts
                    .iter()
                    .any(|(e, f)| e == exit && subsumes(f, &post_f))
            })
        }
        // The baseline does not produce loop invariants.
        Property::LoopInv { .. } => false,
    }
}

/// Grade histogram across a set of runs — the static-verification
/// extension of Table 1. `ungraded` counts invariants the post-pass
/// never touched (verification not configured, or the `SLING_VERIFY`
/// kill-switch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GradeSummary {
    /// Invariants graded `Verified`.
    pub verified: usize,
    /// Invariants still `Refuted` after the final refinement round.
    pub refuted: usize,
    /// Invariants graded `Confirmed` (refuted statically, survived
    /// re-inference on the witness input).
    pub confirmed: usize,
    /// Invariants the prover could not decide within budget.
    pub unknown: usize,
    /// Invariants never graded.
    pub ungraded: usize,
    /// Refutations before any refinement ran, summed over runs.
    pub refuted_initial: usize,
    /// Refinement rounds executed, summed over runs.
    pub cegir_rounds: usize,
}

impl GradeSummary {
    /// Fraction of graded invariants the prover endorsed (`Verified` or
    /// `Confirmed`); `None` when nothing was graded.
    pub fn precision(&self) -> Option<f64> {
        let graded = self.verified + self.refuted + self.confirmed + self.unknown;
        (graded > 0).then(|| (self.verified + self.confirmed) as f64 / graded as f64)
    }
}

/// Aggregates the verification-grade histogram over runs.
pub fn grade_summary(runs: &[BenchRun]) -> GradeSummary {
    let mut sum = GradeSummary::default();
    for r in runs {
        sum.verified += r.report.graded_count(InvariantGrade::Verified);
        sum.refuted += r.report.graded_count(InvariantGrade::Refuted);
        sum.confirmed += r.report.graded_count(InvariantGrade::Confirmed);
        sum.unknown += r.report.graded_count(InvariantGrade::Unknown);
        sum.ungraded += r.report.graded_count(InvariantGrade::Ungraded);
        sum.refuted_initial += r.report.metrics.refuted_initial;
        sum.cegir_rounds += r.report.metrics.cegir_rounds;
    }
    sum
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Category label.
    pub category: Category,
    /// Program count.
    pub programs: usize,
    /// Total MiniC LoC.
    pub loc: usize,
    /// Total declared locations (iLocs).
    pub ilocs: usize,
    /// Total snapshots.
    pub traces: usize,
    /// Total invariants.
    pub invs: usize,
    /// Spurious invariants.
    pub spurious: usize,
    /// Programs with full coverage.
    pub a: usize,
    /// Partially covered / spurious programs.
    pub s: usize,
    /// Programs with no usable traces.
    pub x: usize,
    /// Total analysis seconds.
    pub time: f64,
    /// Average points-to atoms per invariant.
    pub avg_single: f64,
    /// Average inductive predicates per invariant.
    pub avg_pred: f64,
    /// Average pure equalities per invariant.
    pub avg_pure: f64,
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Category label.
    pub category: Category,
    /// Documented properties.
    pub total: usize,
    /// Found by both tools.
    pub both: usize,
    /// Found only by the baseline.
    pub s2_only: usize,
    /// Found only by SLING.
    pub sling_only: usize,
    /// Found by neither.
    pub neither: usize,
}

/// Runs the whole corpus (or a filtered subset) once. Benchmarks in the
/// same category share one checker cache, so structure shapes proved for
/// one program warm up the next.
pub fn run_corpus(config: &EvalConfig, filter: Option<&dyn Fn(&Bench) -> bool>) -> Vec<BenchRun> {
    let mut caches: BTreeMap<Category, Arc<CheckCache>> = BTreeMap::new();
    all_benches()
        .iter()
        .filter(|b| filter.map(|f| f(b)).unwrap_or(true))
        .map(|b| {
            let cache = Arc::clone(
                caches
                    .entry(b.category)
                    .or_insert_with(|| Arc::new(CheckCache::new())),
            );
            run_bench_cached(b, config, Some(cache))
        })
        .collect()
}

/// Aggregates Table 1 rows from runs.
pub fn table1(runs: &[BenchRun]) -> Vec<Table1Row> {
    let mut by_cat: BTreeMap<Category, Vec<&BenchRun>> = BTreeMap::new();
    for r in runs {
        by_cat.entry(r.bench.category).or_default().push(r);
    }
    Category::all()
        .iter()
        .filter_map(|cat| {
            let runs = by_cat.get(cat)?;
            let mut row = Table1Row {
                category: *cat,
                programs: runs.len(),
                loc: 0,
                ilocs: 0,
                traces: 0,
                invs: 0,
                spurious: 0,
                a: 0,
                s: 0,
                x: 0,
                time: 0.0,
                avg_single: 0.0,
                avg_pred: 0.0,
                avg_pure: 0.0,
            };
            let mut singles = 0usize;
            let mut preds = 0usize;
            let mut pures = 0usize;
            for r in runs {
                row.loc += r.bench.loc();
                row.ilocs += r.report.declared_locations.len();
                match r.coverage {
                    Coverage::All => row.a += 1,
                    Coverage::Some => row.s += 1,
                    Coverage::None => {
                        row.x += 1;
                        continue; // the paper excludes ∗ programs' numbers
                    }
                }
                row.traces += r.report.metrics.traces;
                row.invs += r.report.invariant_count();
                row.spurious += r.report.spurious_count();
                row.time += r.report.metrics.seconds;
                for rep in &r.report.locations {
                    for inv in &rep.invariants {
                        singles += inv.stats.singletons;
                        preds += inv.stats.preds;
                        pures += inv.stats.pures;
                    }
                }
            }
            if row.invs > 0 {
                row.avg_single = singles as f64 / row.invs as f64;
                row.avg_pred = preds as f64 / row.invs as f64;
                row.avg_pure = pures as f64 / row.invs as f64;
            }
            Some(row)
        })
        .collect()
}

/// Aggregates Table 2 rows from runs.
pub fn table2(runs: &[BenchRun]) -> Vec<Table2Row> {
    let mut by_cat: BTreeMap<Category, Table2Row> = BTreeMap::new();
    for r in runs {
        let row = by_cat.entry(r.bench.category).or_insert(Table2Row {
            category: r.bench.category,
            total: 0,
            both: 0,
            s2_only: 0,
            sling_only: 0,
            neither: 0,
        });
        for (s, b) in r.sling_found.iter().zip(&r.baseline_found) {
            row.total += 1;
            match (s, b) {
                (true, true) => row.both += 1,
                (false, true) => row.s2_only += 1,
                (true, false) => row.sling_only += 1,
                (false, false) => row.neither += 1,
            }
        }
    }
    Category::all()
        .iter()
        .filter_map(|c| by_cat.get(c).cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> EvalConfig {
        EvalConfig::default()
    }

    #[test]
    fn reverse_end_to_end() {
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "sll/reverse")
            .unwrap();
        let run = run_bench(&bench, &quick_config());
        assert_eq!(
            run.coverage,
            Coverage::All,
            "report: {:?}",
            run.report.locations.len()
        );
        assert_eq!(
            run.sling_found,
            vec![true, true],
            "spec + loop invariant found"
        );
        // The baseline rejects the loop.
        assert_eq!(run.baseline_found, vec![false, false]);
    }

    #[test]
    fn recursive_append_found_by_both() {
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "sll/append")
            .unwrap();
        let run = run_bench(&bench, &quick_config());
        assert!(run.sling_found[0], "SLING finds the append spec");
        assert!(run.baseline_found[0], "the baseline finds the append spec");
    }

    #[test]
    fn buggy_program_is_x() {
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "sorted/quickSort")
            .unwrap();
        let run = run_bench(&bench, &quick_config());
        assert_eq!(run.coverage, Coverage::None);
        assert!(run.sling_found.iter().all(|f| !f));
    }

    #[test]
    fn freeing_program_yields_spurious() {
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "sll/delAll")
            .unwrap();
        let run = run_bench(&bench, &quick_config());
        assert!(
            run.report.spurious_count() > 0,
            "free quirk must taint invariants"
        );
        assert_eq!(run.coverage, Coverage::Some);
    }

    #[test]
    fn dll_concat_reproduces_paper_example() {
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "dll/concat")
            .unwrap();
        let run = run_bench(&bench, &quick_config());
        assert!(run.sling_found[0], "the §2 specification is found");
        assert!(
            !run.baseline_found[0],
            "no unary DLL predicate: baseline fails"
        );
    }

    #[test]
    fn grade_summary_reports_graded_precision() {
        let mut config = quick_config();
        config.sling.verify = Some(sling::VerifySettings::default());
        let bench = all_benches()
            .into_iter()
            .find(|b| b.name == "sll/reverse")
            .unwrap();
        let runs = vec![run_bench(&bench, &config)];
        let summary = grade_summary(&runs);
        let total = summary.verified
            + summary.refuted
            + summary.confirmed
            + summary.unknown
            + summary.ungraded;
        assert_eq!(total, runs[0].report.invariant_count());
        let env_off = matches!(std::env::var("SLING_VERIFY"), Ok(v)
            if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"));
        if env_off {
            assert_eq!(
                summary.precision(),
                None,
                "nothing graded under the kill-switch"
            );
        } else {
            assert_eq!(summary.ungraded, 0, "every invariant graded: {summary:?}");
            assert_eq!(summary.refuted, 0, "{summary:?}");
            let precision = summary.precision().expect("graded invariants exist");
            assert!(precision > 0.0, "{summary:?}");
        }
    }

    #[test]
    fn category_runs_share_the_cache() {
        let config = quick_config();
        let runs = run_corpus(&config, Some(&|b: &Bench| b.category == Category::Sll));
        assert!(runs.len() > 1);
        let warm_hits: u64 = runs[1..].iter().map(|r| r.report.cache.hits).sum();
        assert!(
            warm_hits > 0,
            "later SLL benchmarks must hit entailments cached by earlier ones"
        );
    }
}
