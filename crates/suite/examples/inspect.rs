//! Inspects one benchmark end to end: prints coverage, traces, cache
//! effectiveness, and the inferred invariants per location.
//!
//! ```sh
//! cargo run --release -p sling-suite --example inspect -- dll/concat
//! ```

use sling_suite::{corpus, eval};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sll/append".into());
    let Some(bench) = corpus::all_benches().into_iter().find(|b| b.name == name) else {
        eprintln!("unknown benchmark `{name}`; names look like `sll/append` or `dll/concat`");
        std::process::exit(2);
    };
    let run = eval::run_bench(&bench, &eval::EvalConfig::default());
    println!(
        "coverage: {:?}; traces {}; sling_found {:?}; baseline {:?}; cache {}",
        run.coverage,
        run.report.metrics.traces,
        run.sling_found,
        run.baseline_found,
        run.report.cache,
    );
    for rep in &run.report.locations {
        println!(
            "== {} (models {}, tainted {})",
            rep.location, rep.models_used, rep.tainted
        );
        for inv in rep.invariants.iter().take(4) {
            println!(
                "   [{}] {}",
                if inv.spurious { "SPUR" } else { "ok" },
                inv.formula
            );
        }
    }
}
