//! Inspects one benchmark end to end: prints coverage, traces, and the
//! inferred invariants per location.
//!
//! ```sh
//! cargo run --release -p sling-suite --example inspect -- dll/concat
//! ```

use sling_suite::{corpus, eval};
use sling_lang::Location;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sll/append".into());
    let bench = corpus::all_benches().into_iter().find(|b| b.name == name).unwrap();
    let run = eval::run_bench(&bench, &eval::EvalConfig::default());
    println!("coverage: {:?}; traces {}; sling_found {:?}; baseline {:?}",
        run.coverage, run.outcome.traces, run.sling_found, run.baseline_found);
    for rep in &run.outcome.reports {
        println!("== {} (models {}, tainted {})", rep.location, rep.models_used, rep.tainted);
        for inv in rep.invariants.iter().take(4) {
            println!("   [{}] {}", if inv.spurious { "SPUR" } else { "ok" }, inv.formula);
        }
    }
    let _ = Location::Entry;
}
