//! Bytecode execution tier for MiniC trace collection.
//!
//! SLING's cost is dominated by re-running target programs over many
//! test inputs to collect stack-heap models (Algorithm 1 line 1,
//! `CollectModels`). The tree-walk interpreter in `sling_lang` re-walks
//! the AST and dispatches per node on every run; this crate compiles a
//! type-checked [`Program`](sling_lang::Program) once into per-function
//! [`Chunk`]s of compact stack-machine [`Instruction`]s ([`Compiler`])
//! and executes them with [`BytecodeVm`] — same `RtHeap`, same
//! [`Tracer`](sling_lang::Tracer) snapshot stream, same typed
//! [`RtError`](sling_lang::RtError) faults at the same step, so the
//! tree-walk `Vm` remains a differential-testing oracle while the
//! bytecode tier carries the hot path.
//!
//! # Example
//!
//! Compile, inspect, and run:
//!
//! ```
//! use sling_lang::{check_program, parse_program, VmConfig};
//! use sling_logic::Symbol;
//! use sling_models::Val;
//! use sling_vm::{BytecodeVm, Compiler};
//!
//! let program = parse_program(
//!     "fn sum(n: int) -> int {
//!          var s: int = 0;
//!          while (n > 0) { s = s + n; n = n - 1; }
//!          return s;
//!      }",
//! )?;
//! check_program(&program)?;
//!
//! let compiled = Compiler::compile(&program);
//! let listing = compiled.chunk(Symbol::intern("sum")).unwrap().disassemble();
//! assert!(listing.contains("jz"), "{listing}");
//!
//! let mut vm = BytecodeVm::new(&compiled, VmConfig::default());
//! let out = vm.call(Symbol::intern("sum"), &[Val::Int(10)])?;
//! assert_eq!(out, Some(Val::Int(55)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod chunk;
mod compile;
mod exec;

pub use chunk::{Chunk, CompiledProgram, Instruction, NewTemplate};
pub use compile::Compiler;
pub use exec::BytecodeVm;

#[cfg(test)]
mod tests {
    use sling_lang::{
        check_program, parse_program, Location, Program, RtError, TraceConfig, Tracer, Vm, VmConfig,
    };
    use sling_logic::{Span, Symbol};
    use sling_models::Val;

    use crate::{BytecodeVm, Compiler};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn compile(src: &str) -> (Program, crate::CompiledProgram) {
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let c = Compiler::compile(&p);
        (p, c)
    }

    fn run(src: &str, func: &str, args: &[Val]) -> Result<Option<Val>, RtError> {
        let (_, c) = compile(src);
        let mut vm = BytecodeVm::new(&c, VmConfig::default());
        vm.call(sym(func), args)
    }

    #[test]
    fn arithmetic_and_calls() {
        let out = run(
            "fn fib(n: int) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }",
            "fib",
            &[Val::Int(10)],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(55)));
    }

    #[test]
    fn heap_alloc_and_fields() {
        let out = run(
            "struct Node { next: Node*; data: int; }
             fn build() -> int {
                 var a: Node* = new Node { data: 1 };
                 var b: Node* = new Node { data: 2, next: a };
                 return b->next->data + b->data;
             }",
            "build",
            &[],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(3)));
    }

    #[test]
    fn null_deref_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f(x: Node*) -> Node* { return x->next; }",
            "f",
            &[Val::Nil],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::NullDeref(_)));
    }

    #[test]
    fn use_after_free_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f() -> Node* {
                 var x: Node* = new Node;
                 free(x);
                 return x->next;
             }",
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::UseAfterFree(_)));
    }

    #[test]
    fn double_free_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f() {
                 var x: Node* = new Node;
                 free(x);
                 free(x);
             }",
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::InvalidFree(_)));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let (_, c) = compile("fn f() { while (true) { } }");
        let mut vm = BytecodeVm::new(
            &c,
            VmConfig {
                max_steps: 10_000,
                max_depth: 64,
            },
        );
        assert_eq!(vm.call(sym("f"), &[]), Err(RtError::StepLimit));
    }

    #[test]
    fn runaway_recursion_hits_depth_limit() {
        let (_, c) = compile("fn f(n: int) -> int { return f(n); }");
        let mut vm = BytecodeVm::new(
            &c,
            VmConfig {
                max_steps: 1_000_000,
                max_depth: 64,
            },
        );
        assert_eq!(
            vm.call(sym("f"), &[Val::Int(0)]),
            Err(RtError::StackOverflow)
        );
    }

    #[test]
    fn division_by_zero() {
        let err = run("fn f(n: int) -> int { return 1 / n; }", "f", &[Val::Int(0)]).unwrap_err();
        assert!(matches!(err, RtError::DivByZero(_)));
    }

    #[test]
    fn no_return_detected() {
        let err = run(
            "fn f(n: int) -> int { if (n > 0) { return 1; } }",
            "f",
            &[Val::Int(-3)],
        )
        .unwrap_err();
        assert_eq!(err, RtError::NoReturn(sym("f")));
    }

    #[test]
    fn short_circuit_avoids_null_deref() {
        let out = run(
            "struct Node { next: Node*; data: int; }
             fn f(x: Node*) -> bool { return x != null && x->data > 0; }",
            "f",
            &[Val::Nil],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(0)));
    }

    const CONCAT: &str = "
        struct Node { next: Node*; prev: Node*; }
        fn concat(x: Node*, y: Node*) -> Node* {
            @L1;
            if (x == null) { @L2; return y; }
            else {
                var tmp: Node* = concat(x->next, y);
                x->next = tmp;
                if (tmp != null) { tmp->prev = x; }
                @L3;
                return x;
            }
        }";

    /// Builds Figure 2's x = [1 <-> 2 <-> 3], y = [4 <-> 5] in `vm`.
    fn build_fig2(vm: &mut BytecodeVm<'_>) -> (Val, Val) {
        let node = sym("Node");
        let c1 = vm.alloc(node, vec![Val::Nil, Val::Nil]);
        let c2 = vm.alloc(node, vec![Val::Nil, Val::Addr(c1)]);
        let c3 = vm.alloc(node, vec![Val::Nil, Val::Addr(c2)]);
        vm.heap.write(c1, 0, Val::Addr(c2), Span::DUMMY).unwrap();
        vm.heap.write(c2, 0, Val::Addr(c3), Span::DUMMY).unwrap();
        let c4 = vm.alloc(node, vec![Val::Nil, Val::Nil]);
        let c5 = vm.alloc(node, vec![Val::Nil, Val::Addr(c4)]);
        vm.heap.write(c4, 0, Val::Addr(c5), Span::DUMMY).unwrap();
        (Val::Addr(c1), Val::Addr(c4))
    }

    #[test]
    fn tracer_collects_concat_snapshots() {
        let (_, c) = compile(CONCAT);
        let mut vm = BytecodeVm::new(&c, VmConfig::default());
        let (x, y) = build_fig2(&mut vm);
        vm.set_tracer(Tracer::new(sym("concat"), TraceConfig::default()));
        let out = vm.call(sym("concat"), &[x, y]).unwrap();
        assert_eq!(out, Some(x));
        let tracer = vm.take_tracer().unwrap();
        assert_eq!(tracer.at(Location::Label(sym("L1"))).len(), 4);
        assert_eq!(tracer.at(Location::Label(sym("L2"))).len(), 1);
        assert_eq!(tracer.at(Location::Label(sym("L3"))).len(), 3);
        assert_eq!(tracer.at(Location::Entry).len(), 4);
        let exits = tracer.at(Location::Exit(1));
        assert_eq!(exits.len(), 3);
        for snap in &exits {
            assert!(snap.model.stack.get(sym("res")).is_some());
        }
        // Whole-backtrace heap visibility (Figure 2b: h1 = h2 = h3).
        for snap in tracer.at(Location::Label(sym("L3"))) {
            assert_eq!(snap.model.heap.len(), 5, "all-frames view at L3");
        }
        let l3 = tracer.at(Location::Label(sym("L3")));
        assert!(l3[0].model.stack.get(sym("tmp")).is_some());
        let l2 = tracer.at(Location::Label(sym("L2")));
        assert!(l2[0].model.stack.get(sym("tmp")).is_none());
        assert_eq!(l2[0].model.heap.len(), 5, "backtrace view at L2");
        assert_eq!(tracer.at(Location::Entry)[0].activation, 1);
        assert_eq!(tracer.at(Location::Exit(1))[0].activation, 3);
        assert_eq!(tracer.at(Location::Exit(0))[0].activation, 4);
    }

    #[test]
    fn loop_head_snapshots() {
        let src = "
            struct Node { next: Node*; }
            fn len(x: Node*) -> int {
                var n: int = 0;
                while @inv (x != null) { n = n + 1; x = x->next; }
                return n;
            }";
        let (_, c) = compile(src);
        let mut vm = BytecodeVm::new(&c, VmConfig::default());
        let node = sym("Node");
        let c2 = vm.alloc(node, vec![Val::Nil]);
        let c1 = vm.alloc(node, vec![Val::Addr(c2)]);
        vm.set_tracer(Tracer::new(sym("len"), TraceConfig::default()));
        let out = vm.call(sym("len"), &[Val::Addr(c1)]).unwrap();
        assert_eq!(out, Some(Val::Int(2)));
        let tracer = vm.take_tracer().unwrap();
        assert_eq!(tracer.at(Location::LoopHead(sym("inv"))).len(), 3);
        let heads = tracer.at(Location::LoopHead(sym("inv")));
        assert_eq!(heads[2].model.heap.len(), 2, "entry roots keep the list");
    }

    #[test]
    fn freed_cells_taint_snapshots() {
        let src = "
            struct Node { next: Node*; }
            fn f(x: Node*) -> Node* {
                free(x->next);
                @after;
                return x;
            }";
        let (_, c) = compile(src);
        let mut vm = BytecodeVm::new(&c, VmConfig::default());
        let node = sym("Node");
        let c2 = vm.alloc(node, vec![Val::Nil]);
        let c1 = vm.alloc(node, vec![Val::Addr(c2)]);
        vm.set_tracer(Tracer::new(sym("f"), TraceConfig::default()));
        vm.call(sym("f"), &[Val::Addr(c1)]).unwrap();
        let tracer = vm.take_tracer().unwrap();
        let after = tracer.at(Location::Label(sym("after")));
        assert!(after[0].tainted, "dangling x->next must taint the snapshot");
        assert_eq!(after[0].model.heap.len(), 2);
    }

    // ------------------------------------------------------------------
    // Differential checks against the tree-walk oracle: identical
    // snapshot streams (values, activations, taint) and identical typed
    // faults, including mid-run step-limit faults whose partial traces
    // must match snapshot for snapshot.
    // ------------------------------------------------------------------

    /// Runs `func` on list inputs of every length in `0..=max_len`
    /// under both executors and asserts trace-for-trace equality.
    fn assert_differential(src: &str, func: &str, config: VmConfig, max_len: usize) {
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let c = Compiler::compile(&p);
        let node = sym("Node");
        for len in 0..=max_len {
            let mut tw = Vm::new(&p, config);
            let mut bc = BytecodeVm::new(&c, config);
            let mut heads = Vec::new();
            for vm_heap in [&mut tw.heap, &mut bc.heap] {
                let mut head = Val::Nil;
                for i in (0..len).rev() {
                    let loc = vm_heap.alloc(node, vec![head, Val::Int(i as i64)]);
                    head = Val::Addr(loc);
                }
                heads.push(head);
            }
            tw.set_tracer(Tracer::new(sym(func), TraceConfig::default()));
            bc.set_tracer(Tracer::new(sym(func), TraceConfig::default()));
            let out_tw = tw.call(sym(func), &[heads[0]]);
            let out_bc = bc.call(sym(func), &[heads[1]]);
            assert_eq!(out_tw, out_bc, "{func} len={len}: result/fault");
            assert_eq!(tw.activations(), bc.activations(), "{func} len={len}");
            let t_tw = tw.take_tracer().unwrap();
            let t_bc = bc.take_tracer().unwrap();
            assert_eq!(
                t_tw.snapshots, t_bc.snapshots,
                "{func} len={len}: snapshot streams diverge"
            );
        }
    }

    const LIST_SUM: &str = "
        struct Node { next: Node*; data: int; }
        fn sum(x: Node*) -> int {
            var s: int = 0;
            while @inv (x != null) { s = s + x->data; x = x->next; }
            return s;
        }";

    const LIST_REV: &str = "
        struct Node { next: Node*; data: int; }
        fn rev(x: Node*) -> Node* {
            var out: Node* = null;
            while @inv (x != null) {
                var nxt: Node* = x->next;
                x->next = out;
                out = x;
                x = nxt;
            }
            return out;
        }";

    const LIST_LEN_REC: &str = "
        struct Node { next: Node*; data: int; }
        fn len(x: Node*) -> int {
            @here;
            if (x == null) { return 0; }
            return 1 + len(x->next);
        }";

    const LIST_FREE_ALL: &str = "
        struct Node { next: Node*; data: int; }
        fn drop(x: Node*) {
            while @inv (x != null) {
                var nxt: Node* = x->next;
                free(x);
                x = nxt;
            }
            return;
        }";

    // Seeded bug: walks one past the end (null deref on the last node).
    const LIST_BUGGY: &str = "
        struct Node { next: Node*; data: int; }
        fn last(x: Node*) -> int {
            while @inv (x->next != null) { x = x->next; }
            return x->data;
        }";

    #[test]
    fn differential_loops_and_recursion() {
        let cfg = VmConfig::default();
        assert_differential(LIST_SUM, "sum", cfg, 6);
        assert_differential(LIST_REV, "rev", cfg, 6);
        assert_differential(LIST_LEN_REC, "len", cfg, 6);
        assert_differential(LIST_FREE_ALL, "drop", cfg, 6);
    }

    #[test]
    fn differential_faulting_partial_traces() {
        // Null deref on the empty list; identical partial traces.
        assert_differential(LIST_BUGGY, "last", VmConfig::default(), 6);
    }

    #[test]
    fn differential_step_limit_mid_loop() {
        // A tight budget faults mid-loop: both executors must cut the
        // trace at the same snapshot and report the same error.
        for max_steps in [1, 7, 23, 60, 61, 62, 63, 64, 100] {
            let cfg = VmConfig {
                max_steps,
                max_depth: 2_000,
            };
            assert_differential(LIST_SUM, "sum", cfg, 4);
            assert_differential(LIST_LEN_REC, "len", cfg, 4);
        }
    }

    #[test]
    fn differential_depth_limit() {
        for max_depth in [1, 2, 3, 5] {
            let cfg = VmConfig {
                max_steps: 2_000_000,
                max_depth,
            };
            assert_differential(LIST_LEN_REC, "len", cfg, 6);
        }
    }

    #[test]
    fn differential_concat_full_trace() {
        let p = parse_program(CONCAT).unwrap();
        check_program(&p).unwrap();
        let c = Compiler::compile(&p);
        let mut bc = BytecodeVm::new(&c, VmConfig::default());
        let (bx, by) = build_fig2(&mut bc);
        let mut tw = Vm::new(&p, VmConfig::default());
        // Same allocation order => same locations in the oracle.
        let node = sym("Node");
        let c1 = tw.alloc(node, vec![Val::Nil, Val::Nil]);
        let c2 = tw.alloc(node, vec![Val::Nil, Val::Addr(c1)]);
        let c3 = tw.alloc(node, vec![Val::Nil, Val::Addr(c2)]);
        tw.heap.write(c1, 0, Val::Addr(c2), Span::DUMMY).unwrap();
        tw.heap.write(c2, 0, Val::Addr(c3), Span::DUMMY).unwrap();
        let c4 = tw.alloc(node, vec![Val::Nil, Val::Nil]);
        let c5 = tw.alloc(node, vec![Val::Nil, Val::Addr(c4)]);
        tw.heap.write(c4, 0, Val::Addr(c5), Span::DUMMY).unwrap();

        tw.set_tracer(Tracer::new(sym("concat"), TraceConfig::default()));
        bc.set_tracer(Tracer::new(sym("concat"), TraceConfig::default()));
        let out_tw = tw.call(sym("concat"), &[Val::Addr(c1), Val::Addr(c4)]);
        let out_bc = bc.call(sym("concat"), &[bx, by]);
        assert_eq!(out_tw, out_bc);
        assert_eq!(
            tw.take_tracer().unwrap().snapshots,
            bc.take_tracer().unwrap().snapshots
        );
    }

    #[test]
    fn disassemble_lists_every_function() {
        let (_, c) = compile(CONCAT);
        let listing = c.disassemble();
        assert!(listing.contains("fn concat(x, y):"), "{listing}");
        assert!(listing.contains("snap @L1"), "{listing}");
        assert!(listing.contains("call fn#0"), "{listing}");
        assert!(listing.contains("ret #"), "{listing}");
    }

    #[test]
    fn activation_counter_counts_snapshotless_faults() {
        // Each activation of `f` faults (or overflows the stack) before
        // any label; only entry snapshots are recorded, but the counter
        // must still count every activation.
        let (_, c) = compile("fn f(n: int) -> int { return f(n); }");
        let mut vm = BytecodeVm::new(
            &c,
            VmConfig {
                max_steps: 1_000_000,
                max_depth: 8,
            },
        );
        vm.set_tracer(Tracer::new(sym("f"), TraceConfig::default()));
        assert_eq!(
            vm.call(sym("f"), &[Val::Int(0)]),
            Err(RtError::StackOverflow)
        );
        // 8 frames entered; the 9th call faulted before pushing one.
        assert_eq!(vm.activations(), 8);
        let tracer = vm.take_tracer().unwrap();
        assert_eq!(tracer.at(Location::Entry).len(), 8);
    }
}
