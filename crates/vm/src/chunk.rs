//! The compiled form of a MiniC program: per-function [`Chunk`]s of
//! stack-based [`Instruction`]s with constant, span, and
//! allocation-template side tables.
//!
//! Instructions are 8 bytes and carry *indices* into the side tables
//! instead of inline payloads, so the dispatch loop streams through a
//! compact `Vec<Instruction>` — the representation the ROADMAP calls
//! "the single biggest raw-speed lever" over re-walking the AST.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sling_logic::{Span, Symbol};
use sling_models::Val;

/// One stack-machine operation.
///
/// Conventions:
///
/// * the operand stack holds [`Val`]s; binary operators pop `b` then `a`
///   (operands are pushed left to right);
/// * `%n` slots index the current frame's locals, `#n` indexes a side
///   table of the chunk (constants, spans, templates, exit indices);
/// * *tick* means "count one interpreter step against
///   [`VmConfig::max_steps`](sling_lang::VmConfig)" — tick placement
///   mirrors the tree-walk interpreter exactly (one step per statement
///   and per expression node, parents before children), which is what
///   makes step-limited runs fault at the same observable point under
///   both executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Count `n` interpreter steps (adjacent ticks are merged by the
    /// compiler; no observable action separates them).
    Tick(u32),
    /// Push constant `#n` (no tick: used for synthesized values such as
    /// variable-declaration defaults and short-circuit results, which
    /// the tree-walk interpreter does not step-count).
    Const(u16),
    /// Tick, then push constant `#n` (a literal expression node).
    ConstT(u16),
    /// Tick, then push local `%n` (a variable expression node).
    LoadT(u16),
    /// Pop into local `%n`.
    Store(u16),
    /// Pop and append as a new named local (a `var` declaration).
    Bind(Symbol),
    /// Truncate the frame's locals to `n` (lexical-scope exit).
    Trunc(u16),
    /// Pop and discard (an expression statement).
    Pop,
    /// Jump to code offset `n`.
    Jump(u32),
    /// Pop; jump to `n` when the value is `0` (null and addresses are
    /// truthy, exactly like the tree-walk condition test).
    JumpIfFalse(u32),
    /// Pop; jump to `n` when the value is not `0`.
    JumpIfTrue(u32),
    /// Pop `v`; push `Int(1)` if `v != 0` else `Int(0)`.
    ToBool,
    /// Pop `v`; push `Int(1)` if `v == 0` else `Int(0)` (`!`).
    Not,
    /// Pop `v`; push checked `-v`. Span `#inner` reports a non-integer
    /// operand, `#at` an overflow.
    Neg {
        /// Span index of the operand expression.
        inner: u16,
        /// Span index of the whole negation expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push checked `a + b`. Spans `#a`/`#b` report
    /// non-integer operands (checked in that order), `#at` an overflow.
    Add {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
        /// Span index of the whole expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push checked `a - b` (spans as in [`Instruction::Add`]).
    Sub {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
        /// Span index of the whole expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push checked `a * b` (spans as in [`Instruction::Add`]).
    Mul {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
        /// Span index of the whole expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push checked `a / b`. The divisor is checked
    /// first (non-integer at `#b`, zero at `#at`), then the dividend —
    /// the tree-walk interpreter's exact fault order.
    Div {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
        /// Span index of the whole expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push checked `a % b` (fault order as in
    /// [`Instruction::Div`]).
    Rem {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
        /// Span index of the whole expression.
        at: u16,
    },
    /// Pop `b`, pop `a`; push `Int(a == b)` (raw value equality — null,
    /// addresses, and integers all compare).
    Eq,
    /// Pop `b`, pop `a`; push `Int(a != b)`.
    Ne,
    /// Pop `b`, pop `a`; push `Int(a < b)` over integers (non-integer
    /// operands fault at their span).
    Lt {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
    },
    /// Pop `b`, pop `a`; push `Int(a <= b)` (as [`Instruction::Lt`]).
    Le {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
    },
    /// Pop `b`, pop `a`; push `Int(a > b)` (as [`Instruction::Lt`]).
    Gt {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
    },
    /// Pop `b`, pop `a`; push `Int(a >= b)` (as [`Instruction::Lt`]).
    Ge {
        /// Span index of the left operand.
        a: u16,
        /// Span index of the right operand.
        b: u16,
    },
    /// Pop a base pointer; push the named field of the cell it points
    /// to, resolved against the cell's *dynamic* type. Faults at span
    /// `#at` (the base expression) on null, freed, or invalid bases.
    GetField {
        /// The field name.
        field: Symbol,
        /// Span index of the base expression.
        at: u16,
    },
    /// Pop a base pointer, pop a value; write the named field. Base
    /// faults report span `#base`, write faults span `#at` (the whole
    /// assignment statement).
    SetField {
        /// The field name.
        field: Symbol,
        /// Span index of the base expression.
        base: u16,
        /// Span index of the assignment statement.
        at: u16,
    },
    /// Allocate a cell from template `#n`: pop one value per listed
    /// initializer (see [`NewTemplate`]), push the fresh address.
    New(u16),
    /// Pop a pointer and free its cell; faults at span `#at`.
    Free {
        /// Span index of the freed expression.
        at: u16,
    },
    /// Call function `#func` with the top `args` operands as arguments
    /// (popped into the callee's parameter locals). Checks the call
    /// depth, assigns an activation id when the callee is traced, and
    /// records the callee's entry snapshot.
    Call {
        /// Callee chunk index in the [`CompiledProgram`].
        func: u16,
        /// Argument count (equals the callee's parameter count).
        args: u16,
    },
    /// Pop the return value, record the `exit#n` snapshot with the
    /// ghost `res` bound, and return to the caller.
    Ret(u16),
    /// Record the `exit#n` snapshot with no `res` (a bare `return;`)
    /// and return to the caller.
    RetNull(u16),
    /// Fall off the end of a `void` function: return with *no* exit
    /// snapshot (no `return` statement executed).
    RetVoid,
    /// Fall off the end of a non-`void` function: fault with
    /// [`RtError::NoReturn`](sling_lang::RtError).
    NoRet,
    /// Record a `@label` snapshot.
    Snap(Symbol),
    /// Record a `loop@label` (loop-head) snapshot.
    SnapLoop(Symbol),
}

/// The allocation recipe behind one `new T { ... }` expression: the
/// struct's default field values plus the field slot each popped
/// initializer lands in (in source order, so later duplicates win like
/// the tree-walk interpreter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewTemplate {
    /// The struct type allocated.
    pub ty: Symbol,
    /// Default field values (`null` for pointers, `0` otherwise).
    pub defaults: Vec<Val>,
    /// Field index of each initializer expression, in source order.
    pub slots: Vec<usize>,
}

/// The bytecode of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The function's name.
    pub name: Symbol,
    /// Parameter names, in order (the callee's first locals).
    pub param_names: Vec<Symbol>,
    /// True when the function returns `void`.
    pub ret_void: bool,
    /// The instruction stream. Always ends in a synthesized
    /// [`Instruction::RetVoid`] or [`Instruction::NoRet`], so execution
    /// cannot run off the end.
    pub code: Vec<Instruction>,
    /// Constant pool (`#n` of [`Instruction::Const`]/[`Instruction::ConstT`]),
    /// deduplicated.
    pub consts: Vec<Val>,
    /// Span table (`#n` of fault-carrying instructions), deduplicated.
    pub spans: Vec<Span>,
    /// Allocation templates (`#n` of [`Instruction::New`]).
    pub templates: Vec<NewTemplate>,
}

impl Chunk {
    /// Pretty-prints the chunk for debugging: one instruction per line
    /// with resolved constants and spans.
    ///
    /// ```
    /// use sling_lang::{check_program, parse_program};
    /// use sling_vm::Compiler;
    ///
    /// let program = parse_program("fn add(a: int, b: int) -> int { return a + b; }")?;
    /// check_program(&program)?;
    /// let compiled = Compiler::compile(&program);
    /// let listing = compiled.chunk(sling_logic::Symbol::intern("add")).unwrap().disassemble();
    /// assert!(listing.contains("load.t %0"), "{listing}");
    /// assert!(listing.contains("ret #0"), "{listing}");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let params: Vec<String> = self.param_names.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "fn {}({}):", self.name, params.join(", "));
        for (pc, ins) in self.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:4}  {}", self.render(ins));
        }
        out
    }

    fn render(&self, ins: &Instruction) -> String {
        use Instruction as I;
        let sp = |i: u16| self.spans[i as usize];
        match *ins {
            I::Tick(n) => format!("tick {n}"),
            I::Const(i) => format!("push {}", self.consts[i as usize]),
            I::ConstT(i) => format!("push.t {}", self.consts[i as usize]),
            I::LoadT(s) => format!("load.t %{s}"),
            I::Store(s) => format!("store %{s}"),
            I::Bind(name) => format!("bind {name}"),
            I::Trunc(n) => format!("trunc {n}"),
            I::Pop => "pop".into(),
            I::Jump(t) => format!("jump {t}"),
            I::JumpIfFalse(t) => format!("jz {t}"),
            I::JumpIfTrue(t) => format!("jnz {t}"),
            I::ToBool => "tobool".into(),
            I::Not => "not".into(),
            I::Neg { at, .. } => format!("neg            ; {}", sp(at)),
            I::Add { at, .. } => format!("add            ; {}", sp(at)),
            I::Sub { at, .. } => format!("sub            ; {}", sp(at)),
            I::Mul { at, .. } => format!("mul            ; {}", sp(at)),
            I::Div { at, .. } => format!("div            ; {}", sp(at)),
            I::Rem { at, .. } => format!("rem            ; {}", sp(at)),
            I::Eq => "eq".into(),
            I::Ne => "ne".into(),
            I::Lt { .. } => "lt".into(),
            I::Le { .. } => "le".into(),
            I::Gt { .. } => "gt".into(),
            I::Ge { .. } => "ge".into(),
            I::GetField { field, at } => format!("getf {field}        ; {}", sp(at)),
            I::SetField { field, at, .. } => format!("setf {field}        ; {}", sp(at)),
            I::New(t) => {
                let tmpl = &self.templates[t as usize];
                format!("new {} ({} inits)", tmpl.ty, tmpl.slots.len())
            }
            I::Free { at } => format!("free           ; {}", sp(at)),
            I::Call { func, args } => format!("call fn#{func} ({args} args)"),
            I::Ret(e) => format!("ret #{e}"),
            I::RetNull(e) => format!("ret.null #{e}"),
            I::RetVoid => "ret.void".into(),
            I::NoRet => "no.ret".into(),
            I::Snap(l) => format!("snap @{l}"),
            I::SnapLoop(l) => format!("snap.loop @{l}"),
        }
    }
}

/// A whole compiled program: one [`Chunk`] per function plus the
/// interned function and struct-field tables shared by every chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    /// Per-function chunks; [`Instruction::Call`] indexes this.
    pub chunks: Vec<Chunk>,
    pub(crate) func_ids: BTreeMap<Symbol, u16>,
    /// Struct name → (field name → index), for dynamic field
    /// resolution (the checker guarantees static agreement, but faults
    /// resolve against the cell's runtime type like the tree-walk).
    pub(crate) field_index: BTreeMap<Symbol, BTreeMap<Symbol, usize>>,
}

impl CompiledProgram {
    /// The chunk id of `func`, if the program defines it.
    pub fn func_id(&self, func: Symbol) -> Option<u16> {
        self.func_ids.get(&func).copied()
    }

    /// The chunk compiled from `func`, if the program defines it.
    pub fn chunk(&self, func: Symbol) -> Option<&Chunk> {
        self.func_id(func).map(|id| &self.chunks[id as usize])
    }

    /// Disassembles every chunk (see [`Chunk::disassemble`]).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for chunk in &self.chunks {
            out.push_str(&chunk.disassemble());
        }
        out
    }
}
