//! The bytecode executor.
//!
//! [`BytecodeVm`] runs a [`CompiledProgram`] against the same runtime
//! pieces the tree-walk interpreter uses — [`RtHeap`], [`Tracer`],
//! [`VmConfig`] limits — and is observationally identical to it: the
//! same snapshots in the same order with the same activation ids, and
//! the same typed [`RtError`] at the same step for faulting programs
//! (so a step-limited or segfaulting run leaves a byte-identical
//! partial trace under either executor).
//!
//! The differences are purely representational: one flat `Vec<Val>` of
//! locals for all frames (a `base` offset per frame) instead of nested
//! scope maps, an explicit operand stack instead of the Rust call
//! stack, and a compact instruction stream instead of the AST.

use sling_lang::{Location, RtError, RtHeap, Tracer, VmConfig};
use sling_logic::Symbol;
use sling_models::{Loc, Val};

use crate::chunk::{CompiledProgram, Instruction};

/// One call frame: which chunk is running and where its locals start.
struct BcFrame {
    /// Chunk id of the running function.
    chunk: u16,
    /// First slot of this frame in the shared locals vector.
    base: usize,
    /// Caller program counter to resume at (unused in the outermost frame).
    ret_pc: usize,
    /// Caller chunk id to resume in (unused in the outermost frame).
    ret_chunk: u16,
    /// Dynamic activation id of the traced function (0 if untraced).
    activation: u64,
}

/// The bytecode virtual machine.
///
/// Drop-in equivalent of [`sling_lang::Vm`] for compiled programs: the
/// constructor takes a [`CompiledProgram`] instead of the AST, and
/// `call`/`set_tracer`/`take_tracer`/`activations`/`alloc` mirror the
/// tree-walk API exactly.
///
/// # Examples
///
/// ```
/// use sling_lang::{check_program, parse_program, VmConfig};
/// use sling_models::Val;
/// use sling_vm::{BytecodeVm, Compiler};
///
/// let program = parse_program(
///     "fn add(a: int, b: int) -> int { return a + b; }",
/// )?;
/// check_program(&program)?;
/// let compiled = Compiler::compile(&program);
/// let mut vm = BytecodeVm::new(&compiled, VmConfig::default());
/// let out = vm.call(sling_logic::Symbol::intern("add"), &[Val::Int(2), Val::Int(40)])?;
/// assert_eq!(out, Some(Val::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BytecodeVm<'p> {
    prog: &'p CompiledProgram,
    /// The runtime heap (exposed so input generators can build structures).
    pub heap: RtHeap,
    config: VmConfig,
    steps: u64,
    tracer: Option<Tracer>,
    /// Chunk id of the tracer's target, when the program defines it.
    target_chunk: Option<u16>,
    /// Counter handing out activation ids for the traced function.
    activations: u64,
    /// Values passed as arguments to the outermost call: debugger roots
    /// that stay visible even when a callee frame does not mention them.
    entry_roots: Vec<Val>,
    /// The operand stack (expression intermediates — not debugger roots,
    /// matching the tree-walk where they live on the Rust stack).
    operands: Vec<Val>,
    /// All frames' locals, concatenated; each frame owns `[base..]` of
    /// its suffix.
    locals: Vec<Val>,
    /// Names of `locals` slots, kept in lockstep (snapshots need them).
    names: Vec<Symbol>,
    frames: Vec<BcFrame>,
}

impl<'p> BytecodeVm<'p> {
    /// Creates a VM for a compiled (hence type-checked) program.
    pub fn new(prog: &'p CompiledProgram, config: VmConfig) -> BytecodeVm<'p> {
        BytecodeVm {
            prog,
            heap: RtHeap::new(),
            config,
            steps: 0,
            tracer: None,
            target_chunk: None,
            activations: 0,
            entry_roots: Vec::new(),
            operands: Vec::new(),
            locals: Vec::new(),
            names: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Installs a tracer that snapshots the target function's breakpoints.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.target_chunk = self.prog.func_id(tracer.target);
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer (with its snapshots).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.target_chunk = None;
        self.tracer.take()
    }

    /// The number of traced-function activations so far (see
    /// [`sling_lang::Vm::activations`]): the counter handing out ids,
    /// which also counts activations that faulted before snapshotting.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Allocates a structure instance directly (for input generators).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is unknown or `fields` has the wrong length.
    pub fn alloc(&mut self, ty: Symbol, fields: Vec<Val>) -> Loc {
        let n = self
            .prog
            .field_index
            .get(&ty)
            .unwrap_or_else(|| panic!("unknown struct `{ty}`"))
            .len();
        assert_eq!(fields.len(), n, "field count for `{ty}`");
        self.heap.alloc(ty, fields)
    }

    /// Calls `func` with `args`; returns its value (`None` for void).
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] on any runtime fault; the tracer keeps the
    /// snapshots recorded before the fault.
    pub fn call(&mut self, func: Symbol, args: &[Val]) -> Result<Option<Val>, RtError> {
        debug_assert!(self.frames.is_empty(), "re-entrant call");
        self.entry_roots = args.iter().copied().filter(|v| v.is_pointer()).collect();
        let func_id = self
            .prog
            .func_id(func)
            .ok_or(RtError::UnknownFunction(func))?;
        let chunk = &self.prog.chunks[func_id as usize];
        assert_eq!(
            chunk.param_names.len(),
            args.len(),
            "arity checked by caller"
        );
        if self.frames.len() >= self.config.max_depth {
            return Err(RtError::StackOverflow);
        }
        self.locals.extend_from_slice(args);
        self.names.extend_from_slice(&chunk.param_names);
        let activation = self.next_activation(func_id);
        self.frames.push(BcFrame {
            chunk: func_id,
            base: 0,
            ret_pc: usize::MAX,
            ret_chunk: u16::MAX,
            activation,
        });
        self.snapshot(Location::Entry, None);
        let out = self.run();
        if out.is_err() {
            self.operands.clear();
            self.locals.clear();
            self.names.clear();
            self.frames.clear();
        }
        out
    }

    fn next_activation(&mut self, func_id: u16) -> u64 {
        if self.tracer.is_some() && self.target_chunk == Some(func_id) {
            self.activations += 1;
            self.activations
        } else {
            0
        }
    }

    fn tick(&mut self, n: u32) -> Result<(), RtError> {
        self.steps += u64::from(n);
        if self.steps > self.config.max_steps {
            return Err(RtError::StepLimit);
        }
        Ok(())
    }

    fn pop(&mut self) -> Val {
        self.operands.pop().expect("operand stack underflow")
    }

    /// Takes a snapshot at `location` if the running frame belongs to
    /// the traced function — semantics identical to the tree-walk
    /// `Vm::snapshot`: the stack is the frame's named locals (plus the
    /// ghost `res`), the roots are the outermost call's pointer
    /// arguments plus every frame's pointer locals (the whole
    /// backtrace), and operand-stack intermediates are *not* roots.
    fn snapshot(&mut self, location: Location, res: Option<Val>) {
        if self.tracer.is_none() {
            return;
        }
        let frame = self.frames.last().expect("a frame is active");
        if Some(frame.chunk) != self.target_chunk {
            return;
        }
        let mut stack: sling_models::Stack = self.names[frame.base..]
            .iter()
            .copied()
            .zip(self.locals[frame.base..].iter().copied())
            .collect();
        if let Some(v) = res {
            stack.bind(Symbol::intern("res"), v);
        }
        let mut roots: Vec<Val> = self.entry_roots.clone();
        roots.extend(self.locals.iter().copied().filter(|v| v.is_pointer()));
        if let Some(v) = res {
            roots.push(v);
        }
        let activation = frame.activation;
        let tracer = self.tracer.as_mut().expect("checked above");
        tracer.record(
            location,
            stack,
            &roots,
            self.heap.live(),
            self.heap.freed(),
            activation,
        );
    }

    fn run(&mut self) -> Result<Option<Val>, RtError> {
        let prog = self.prog;
        let mut chunk_id = self.frames.last().expect("entry frame").chunk;
        let mut chunk = &prog.chunks[chunk_id as usize];
        let mut base = self.frames.last().expect("entry frame").base;
        let mut pc = 0usize;
        loop {
            let ins = chunk.code[pc];
            pc += 1;
            match ins {
                Instruction::Tick(n) => self.tick(n)?,
                Instruction::Const(i) => self.operands.push(chunk.consts[i as usize]),
                Instruction::ConstT(i) => {
                    self.tick(1)?;
                    self.operands.push(chunk.consts[i as usize]);
                }
                Instruction::LoadT(s) => {
                    self.tick(1)?;
                    self.operands.push(self.locals[base + s as usize]);
                }
                Instruction::Store(s) => {
                    let v = self.pop();
                    self.locals[base + s as usize] = v;
                }
                Instruction::Bind(name) => {
                    let v = self.pop();
                    self.locals.push(v);
                    self.names.push(name);
                }
                Instruction::Trunc(n) => {
                    self.locals.truncate(base + n as usize);
                    self.names.truncate(base + n as usize);
                }
                Instruction::Pop => {
                    self.pop();
                }
                Instruction::Jump(t) => pc = t as usize,
                Instruction::JumpIfFalse(t) => {
                    if self.pop() == Val::Int(0) {
                        pc = t as usize;
                    }
                }
                Instruction::JumpIfTrue(t) => {
                    if self.pop() != Val::Int(0) {
                        pc = t as usize;
                    }
                }
                Instruction::ToBool => {
                    let v = self.pop();
                    self.operands.push(Val::Int((v != Val::Int(0)) as i64));
                }
                Instruction::Not => {
                    let v = self.pop();
                    self.operands.push(Val::Int((v == Val::Int(0)) as i64));
                }
                Instruction::Neg { inner, at } => {
                    let v = self.pop();
                    let out = match v {
                        Val::Int(k) => k
                            .checked_neg()
                            .map(Val::Int)
                            .ok_or(RtError::Overflow(chunk.spans[at as usize]))?,
                        _ => return Err(RtError::InvalidDeref(chunk.spans[inner as usize])),
                    };
                    self.operands.push(out);
                }
                Instruction::Add { a, b, at } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    let out = ka
                        .checked_add(kb)
                        .ok_or(RtError::Overflow(chunk.spans[at as usize]))?;
                    self.operands.push(Val::Int(out));
                }
                Instruction::Sub { a, b, at } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    let out = ka
                        .checked_sub(kb)
                        .ok_or(RtError::Overflow(chunk.spans[at as usize]))?;
                    self.operands.push(Val::Int(out));
                }
                Instruction::Mul { a, b, at } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    let out = ka
                        .checked_mul(kb)
                        .ok_or(RtError::Overflow(chunk.spans[at as usize]))?;
                    self.operands.push(Val::Int(out));
                }
                Instruction::Div { a, b, at } => {
                    let (va, vb) = self.pop_pair();
                    // The interpreter checks the divisor first.
                    let kb = int(vb, chunk, b)?;
                    if kb == 0 {
                        return Err(RtError::DivByZero(chunk.spans[at as usize]));
                    }
                    let ka = int(va, chunk, a)?;
                    let out = ka
                        .checked_div(kb)
                        .ok_or(RtError::Overflow(chunk.spans[at as usize]))?;
                    self.operands.push(Val::Int(out));
                }
                Instruction::Rem { a, b, at } => {
                    let (va, vb) = self.pop_pair();
                    let kb = int(vb, chunk, b)?;
                    if kb == 0 {
                        return Err(RtError::DivByZero(chunk.spans[at as usize]));
                    }
                    let ka = int(va, chunk, a)?;
                    let out = ka
                        .checked_rem(kb)
                        .ok_or(RtError::Overflow(chunk.spans[at as usize]))?;
                    self.operands.push(Val::Int(out));
                }
                Instruction::Eq => {
                    let (va, vb) = self.pop_pair();
                    self.operands.push(Val::Int((va == vb) as i64));
                }
                Instruction::Ne => {
                    let (va, vb) = self.pop_pair();
                    self.operands.push(Val::Int((va != vb) as i64));
                }
                Instruction::Lt { a, b } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    self.operands.push(Val::Int((ka < kb) as i64));
                }
                Instruction::Le { a, b } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    self.operands.push(Val::Int((ka <= kb) as i64));
                }
                Instruction::Gt { a, b } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    self.operands.push(Val::Int((ka > kb) as i64));
                }
                Instruction::Ge { a, b } => {
                    let (ka, kb) = self.int_pair(chunk, a, b)?;
                    self.operands.push(Val::Int((ka >= kb) as i64));
                }
                Instruction::GetField { field, at } => {
                    let span = chunk.spans[at as usize];
                    let bval = self.pop();
                    let loc = expect_addr(bval, span)?;
                    let cell = self.heap.read(loc, span)?;
                    let idx = prog
                        .field_index
                        .get(&cell.ty)
                        .and_then(|m| m.get(&field))
                        .copied()
                        .ok_or(RtError::InvalidDeref(span))?;
                    self.operands.push(cell.fields[idx]);
                }
                Instruction::SetField {
                    field,
                    base: bsp,
                    at,
                } => {
                    let bspan = chunk.spans[bsp as usize];
                    let bval = self.pop();
                    let v = self.pop();
                    let loc = expect_addr(bval, bspan)?;
                    // Field resolution faults at the base span, the
                    // write itself at the statement span (interpreter
                    // fault order).
                    let cell = self.heap.read(loc, bspan)?;
                    let idx = prog
                        .field_index
                        .get(&cell.ty)
                        .and_then(|m| m.get(&field))
                        .copied()
                        .ok_or(RtError::InvalidDeref(bspan))?;
                    self.heap.write(loc, idx, v, chunk.spans[at as usize])?;
                }
                Instruction::New(t) => {
                    let tmpl = &chunk.templates[t as usize];
                    let mut fields = tmpl.defaults.clone();
                    let vals = self
                        .operands
                        .split_off(self.operands.len() - tmpl.slots.len());
                    for (slot, v) in tmpl.slots.iter().zip(vals) {
                        fields[*slot] = v;
                    }
                    let loc = self.heap.alloc(tmpl.ty, fields);
                    self.operands.push(Val::Addr(loc));
                }
                Instruction::Free { at } => {
                    let span = chunk.spans[at as usize];
                    let v = self.pop();
                    let loc = expect_addr(v, span)?;
                    self.heap
                        .free(loc)
                        .map_err(|_| RtError::InvalidFree(span))?;
                }
                Instruction::Call { func, args } => {
                    if self.frames.len() >= self.config.max_depth {
                        return Err(RtError::StackOverflow);
                    }
                    let callee = &prog.chunks[func as usize];
                    let lbase = self.locals.len();
                    let split = self.operands.len() - args as usize;
                    self.locals.extend(self.operands.drain(split..));
                    self.names.extend_from_slice(&callee.param_names);
                    let activation = self.next_activation(func);
                    self.frames.push(BcFrame {
                        chunk: func,
                        base: lbase,
                        ret_pc: pc,
                        ret_chunk: chunk_id,
                        activation,
                    });
                    chunk_id = func;
                    chunk = callee;
                    base = lbase;
                    pc = 0;
                    self.snapshot(Location::Entry, None);
                }
                Instruction::Ret(idx) => {
                    let v = self.pop();
                    self.snapshot(Location::Exit(idx as usize), Some(v));
                    let fr = self.frames.pop().expect("a frame is active");
                    self.locals.truncate(fr.base);
                    self.names.truncate(fr.base);
                    if self.frames.is_empty() {
                        return Ok(Some(v));
                    }
                    chunk_id = fr.ret_chunk;
                    chunk = &prog.chunks[chunk_id as usize];
                    pc = fr.ret_pc;
                    base = self.frames.last().expect("caller frame").base;
                    self.operands.push(v);
                }
                Instruction::RetNull(idx) => {
                    self.snapshot(Location::Exit(idx as usize), None);
                    let fr = self.frames.pop().expect("a frame is active");
                    self.locals.truncate(fr.base);
                    self.names.truncate(fr.base);
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                    chunk_id = fr.ret_chunk;
                    chunk = &prog.chunks[chunk_id as usize];
                    pc = fr.ret_pc;
                    base = self.frames.last().expect("caller frame").base;
                    // Void results only appear in expression statements
                    // (checker-verified); represent as 0.
                    self.operands.push(Val::Int(0));
                }
                Instruction::RetVoid => {
                    // Falling off a void end records no exit snapshot.
                    let fr = self.frames.pop().expect("a frame is active");
                    self.locals.truncate(fr.base);
                    self.names.truncate(fr.base);
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                    chunk_id = fr.ret_chunk;
                    chunk = &prog.chunks[chunk_id as usize];
                    pc = fr.ret_pc;
                    base = self.frames.last().expect("caller frame").base;
                    self.operands.push(Val::Int(0));
                }
                Instruction::NoRet => return Err(RtError::NoReturn(chunk.name)),
                Instruction::Snap(l) => self.snapshot(Location::Label(l), None),
                Instruction::SnapLoop(l) => self.snapshot(Location::LoopHead(l), None),
            }
        }
    }

    fn pop_pair(&mut self) -> (Val, Val) {
        let vb = self.pop();
        let va = self.pop();
        (va, vb)
    }

    /// Pops both operands and checks them as integers, left before
    /// right — the interpreter's operand-check order.
    fn int_pair(
        &mut self,
        chunk: &crate::chunk::Chunk,
        a: u16,
        b: u16,
    ) -> Result<(i64, i64), RtError> {
        let (va, vb) = self.pop_pair();
        Ok((int(va, chunk, a)?, int(vb, chunk, b)?))
    }
}

fn int(v: Val, chunk: &crate::chunk::Chunk, sp: u16) -> Result<i64, RtError> {
    match v {
        Val::Int(k) => Ok(k),
        _ => Err(RtError::InvalidDeref(chunk.spans[sp as usize])),
    }
}

fn expect_addr(v: Val, span: sling_logic::Span) -> Result<Loc, RtError> {
    match v {
        Val::Addr(l) => Ok(l),
        Val::Nil => Err(RtError::NullDeref(span)),
        Val::Int(_) => Err(RtError::InvalidDeref(span)),
    }
}
