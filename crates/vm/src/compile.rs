//! Lowering a type-checked [`Program`] to bytecode.
//!
//! The compiler is a single source-order walk per function. Fidelity to
//! the tree-walk interpreter drives every choice:
//!
//! * **Ticks** are emitted pre-order (statement before its expressions,
//!   expression before its children), exactly where the tree-walk calls
//!   `tick()`. Adjacent ticks are merged into one [`Instruction::Tick`]
//!   — safe because nothing observable separates them — but *never*
//!   across a jump target: a merge past a loop head would let the back
//!   edge skip a tick and shift every later step count. The `barrier`
//!   field marks the last jump target; merging only reaches back to it.
//! * **Exit indices** are assigned in the same source-order walk the
//!   interpreter uses (statements in order; `if` visits then before
//!   else; `while` visits its body), so `exit#i` names agree.
//! * **Spans** for faults are interned per chunk and referenced by the
//!   instruction that can fault, preserving the interpreter's exact
//!   fault spans (operand checked before operator, left before right,
//!   divisor before dividend).

use std::collections::BTreeMap;

use sling_lang::{BinOp, Block, Expr, ExprKind, LValue, Program, Stmt, StmtKind, TyExpr, UnOp};
use sling_logic::{Span, Symbol};
use sling_models::Val;

use crate::chunk::{Chunk, CompiledProgram, Instruction, NewTemplate};

/// Lowers a type-checked [`Program`] into a [`CompiledProgram`].
///
/// The input must have passed [`sling_lang::check_program`]: the
/// compiler resolves variables, fields, and callees statically and
/// panics on names the checker would have rejected.
pub struct Compiler;

impl Compiler {
    /// Compiles every function of `program` into a chunk.
    ///
    /// # Panics
    ///
    /// Panics on unchecked programs (unknown variables, fields, structs,
    /// or callees; more functions/constants/spans than the 16-bit
    /// operand encodings hold).
    pub fn compile(program: &Program) -> CompiledProgram {
        let mut func_ids = BTreeMap::new();
        for (i, f) in program.funcs.iter().enumerate() {
            let id = u16::try_from(i).expect("more than 65535 functions");
            func_ids.insert(f.name, id);
        }
        let mut field_index = BTreeMap::new();
        let mut struct_defaults = BTreeMap::new();
        for s in &program.structs {
            let map: BTreeMap<Symbol, usize> = s
                .fields
                .iter()
                .enumerate()
                .map(|(i, (n, _))| (*n, i))
                .collect();
            field_index.insert(s.name, map);
            let defaults: Vec<Val> = s.fields.iter().map(|(_, ty)| default_of(*ty)).collect();
            struct_defaults.insert(s.name, defaults);
        }
        let chunks = program
            .funcs
            .iter()
            .map(|f| {
                let mut fc = FnCompiler {
                    func_ids: &func_ids,
                    field_index: &field_index,
                    struct_defaults: &struct_defaults,
                    code: Vec::new(),
                    consts: Vec::new(),
                    const_ids: BTreeMap::new(),
                    spans: Vec::new(),
                    span_ids: BTreeMap::new(),
                    templates: Vec::new(),
                    locals: f.params.iter().map(|p| p.name).collect(),
                    exits: 0,
                    barrier: 0,
                };
                fc.block(&f.body);
                // Falling off the end: void functions return silently
                // (no exit snapshot), non-void ones fault.
                fc.code.push(if f.ret == TyExpr::Void {
                    Instruction::RetVoid
                } else {
                    Instruction::NoRet
                });
                Chunk {
                    name: f.name,
                    param_names: f.params.iter().map(|p| p.name).collect(),
                    ret_void: f.ret == TyExpr::Void,
                    code: fc.code,
                    consts: fc.consts,
                    spans: fc.spans,
                    templates: fc.templates,
                }
            })
            .collect();
        CompiledProgram {
            chunks,
            func_ids,
            field_index,
        }
    }
}

fn default_of(ty: TyExpr) -> Val {
    match ty {
        TyExpr::Ptr(_) => Val::Nil,
        _ => Val::Int(0),
    }
}

struct FnCompiler<'p> {
    func_ids: &'p BTreeMap<Symbol, u16>,
    field_index: &'p BTreeMap<Symbol, BTreeMap<Symbol, usize>>,
    struct_defaults: &'p BTreeMap<Symbol, Vec<Val>>,
    code: Vec<Instruction>,
    consts: Vec<Val>,
    const_ids: BTreeMap<Val, u16>,
    spans: Vec<Span>,
    span_ids: BTreeMap<Span, u16>,
    templates: Vec<NewTemplate>,
    /// Compile-time local names; the checker rejects shadowing, so a
    /// reverse scan resolves each variable to a unique frame slot.
    locals: Vec<Symbol>,
    /// Exit indices handed out so far (source-order return statements).
    exits: usize,
    /// Code offset of the most recent jump target: tick merging never
    /// reaches back past it.
    barrier: usize,
}

impl FnCompiler<'_> {
    fn emit(&mut self, ins: Instruction) {
        self.code.push(ins);
    }

    /// Counts one interpreter step, merging into a trailing
    /// [`Instruction::Tick`] unless a jump target intervenes.
    fn tick(&mut self) {
        if self.code.len() > self.barrier {
            if let Some(Instruction::Tick(n)) = self.code.last_mut() {
                *n += 1;
                return;
            }
        }
        self.emit(Instruction::Tick(1));
    }

    fn konst(&mut self, v: Val) -> u16 {
        if let Some(&id) = self.const_ids.get(&v) {
            return id;
        }
        let id = u16::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(v);
        self.const_ids.insert(v, id);
        id
    }

    fn span(&mut self, sp: Span) -> u16 {
        if let Some(&id) = self.span_ids.get(&sp) {
            return id;
        }
        let id = u16::try_from(self.spans.len()).expect("span table overflow");
        self.spans.push(sp);
        self.span_ids.insert(sp, id);
        id
    }

    fn slot(&self, name: Symbol) -> u16 {
        let i = self
            .locals
            .iter()
            .rposition(|n| *n == name)
            .expect("checker guarantees the variable exists");
        u16::try_from(i).expect("frame slot overflow")
    }

    /// Emits a forward jump with a placeholder target; patch later.
    fn jump(&mut self, make: fn(u32) -> Instruction) -> usize {
        self.emit(make(u32::MAX));
        self.code.len() - 1
    }

    /// Points the placeholder jump at `idx` here, and marks a barrier.
    fn patch_here(&mut self, idx: usize) {
        let target = u32::try_from(self.code.len()).expect("code overflow");
        match &mut self.code[idx] {
            Instruction::Jump(t) | Instruction::JumpIfFalse(t) | Instruction::JumpIfTrue(t) => {
                *t = target
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
        self.barrier = self.code.len();
    }

    /// The current offset as a (backward) jump target, marked as a barrier.
    fn here(&mut self) -> u32 {
        self.barrier = self.code.len();
        u32::try_from(self.code.len()).expect("code overflow")
    }

    fn block(&mut self, b: &Block) {
        let depth = self.locals.len();
        for s in &b.stmts {
            self.stmt(s);
        }
        if self.locals.len() > depth {
            self.emit(Instruction::Trunc(
                u16::try_from(depth).expect("frame slot overflow"),
            ));
            self.locals.truncate(depth);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.tick();
        match &s.kind {
            StmtKind::VarDecl { name, ty, init } => {
                match init {
                    Some(e) => self.expr(e),
                    None => {
                        // Synthesized default: the tree-walk does not
                        // step-count it, so plain (tickless) Const.
                        let c = self.konst(default_of(*ty));
                        self.emit(Instruction::Const(c));
                    }
                }
                self.emit(Instruction::Bind(*name));
                self.locals.push(*name);
            }
            StmtKind::Assign { lhs, rhs } => match lhs {
                LValue::Var(v) => {
                    self.expr(rhs);
                    let slot = self.slot(*v);
                    self.emit(Instruction::Store(slot));
                }
                LValue::Field(base, field) => {
                    // Interpreter order: rhs first, then the base.
                    self.expr(rhs);
                    self.expr(base);
                    let bsp = self.span(base.span);
                    let at = self.span(s.span);
                    self.emit(Instruction::SetField {
                        field: *field,
                        base: bsp,
                        at,
                    });
                }
            },
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                let jf = self.jump(Instruction::JumpIfFalse);
                self.block(then_blk);
                match else_blk {
                    Some(eb) => {
                        let je = self.jump(Instruction::Jump);
                        self.patch_here(jf);
                        self.block(eb);
                        self.patch_here(je);
                    }
                    None => self.patch_here(jf),
                }
            }
            StmtKind::While { label, cond, body } => {
                let head = self.here();
                if let Some(l) = label {
                    self.emit(Instruction::SnapLoop(*l));
                }
                self.expr(cond);
                let jf = self.jump(Instruction::JumpIfFalse);
                self.block(body);
                // The interpreter ticks once per completed iteration.
                self.tick();
                self.emit(Instruction::Jump(head));
                self.patch_here(jf);
            }
            StmtKind::Return(value) => {
                let idx = u16::try_from(self.exits).expect("exit index overflow");
                self.exits += 1;
                match value {
                    Some(e) => {
                        self.expr(e);
                        self.emit(Instruction::Ret(idx));
                    }
                    None => self.emit(Instruction::RetNull(idx)),
                }
            }
            StmtKind::Free(e) => {
                self.expr(e);
                let at = self.span(e.span);
                self.emit(Instruction::Free { at });
            }
            StmtKind::ExprStmt(e) => {
                self.expr(e);
                self.emit(Instruction::Pop);
            }
            StmtKind::Label(l) => self.emit(Instruction::Snap(*l)),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(k) => {
                let c = self.konst(Val::Int(*k));
                self.emit(Instruction::ConstT(c));
            }
            ExprKind::Bool(b) => {
                let c = self.konst(Val::Int(*b as i64));
                self.emit(Instruction::ConstT(c));
            }
            ExprKind::Null => {
                let c = self.konst(Val::Nil);
                self.emit(Instruction::ConstT(c));
            }
            ExprKind::Var(v) => {
                let slot = self.slot(*v);
                self.emit(Instruction::LoadT(slot));
            }
            ExprKind::Field(base, f) => {
                self.tick();
                self.expr(base);
                let at = self.span(base.span);
                self.emit(Instruction::GetField { field: *f, at });
            }
            ExprKind::New(ty, inits) => {
                self.tick();
                for (_, fe) in inits {
                    self.expr(fe);
                }
                let fields = self.field_index.get(ty).expect("checker: struct exists");
                let slots: Vec<usize> = inits.iter().map(|(f, _)| fields[f]).collect();
                let defaults = self.struct_defaults[ty].clone();
                let t = u16::try_from(self.templates.len()).expect("template overflow");
                self.templates.push(NewTemplate {
                    ty: *ty,
                    defaults,
                    slots,
                });
                self.emit(Instruction::New(t));
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                self.tick();
                self.expr(inner);
                let isp = self.span(inner.span);
                let at = self.span(e.span);
                self.emit(Instruction::Neg { inner: isp, at });
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                self.tick();
                self.expr(inner);
                self.emit(Instruction::Not);
            }
            ExprKind::Binary(BinOp::And, a, b) => {
                self.tick();
                self.expr(a);
                let jf = self.jump(Instruction::JumpIfFalse);
                self.expr(b);
                self.emit(Instruction::ToBool);
                let je = self.jump(Instruction::Jump);
                self.patch_here(jf);
                // Short-circuit result: synthesized, hence tickless.
                let c = self.konst(Val::Int(0));
                self.emit(Instruction::Const(c));
                self.patch_here(je);
            }
            ExprKind::Binary(BinOp::Or, a, b) => {
                self.tick();
                self.expr(a);
                let jt = self.jump(Instruction::JumpIfTrue);
                self.expr(b);
                self.emit(Instruction::ToBool);
                let je = self.jump(Instruction::Jump);
                self.patch_here(jt);
                let c = self.konst(Val::Int(1));
                self.emit(Instruction::Const(c));
                self.patch_here(je);
            }
            ExprKind::Binary(op, a, b) => {
                self.tick();
                self.expr(a);
                self.expr(b);
                let asp = self.span(a.span);
                let bsp = self.span(b.span);
                let at = self.span(e.span);
                let ins = match op {
                    BinOp::Add => Instruction::Add { a: asp, b: bsp, at },
                    BinOp::Sub => Instruction::Sub { a: asp, b: bsp, at },
                    BinOp::Mul => Instruction::Mul { a: asp, b: bsp, at },
                    BinOp::Div => Instruction::Div { a: asp, b: bsp, at },
                    BinOp::Rem => Instruction::Rem { a: asp, b: bsp, at },
                    BinOp::Eq => Instruction::Eq,
                    BinOp::Ne => Instruction::Ne,
                    BinOp::Lt => Instruction::Lt { a: asp, b: bsp },
                    BinOp::Le => Instruction::Le { a: asp, b: bsp },
                    BinOp::Gt => Instruction::Gt { a: asp, b: bsp },
                    BinOp::Ge => Instruction::Ge { a: asp, b: bsp },
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.emit(ins);
            }
            ExprKind::Call(fname, args) => {
                self.tick();
                for a in args {
                    self.expr(a);
                }
                let func = *self
                    .func_ids
                    .get(fname)
                    .expect("checker guarantees the callee exists");
                let nargs = u16::try_from(args.len()).expect("argument count overflow");
                self.emit(Instruction::Call { func, args: nargs });
            }
        }
    }
}
