//! The embedded debugger: breakpoint locations and stack-heap snapshots.
//!
//! This module replaces the paper's LLDB usage (§2.2, §5.2). The
//! interpreter calls into a [`Tracer`] whenever execution of the *target
//! function* reaches a breakpoint: the function entry, a `@label;`
//! statement, a labelled loop head (before every condition evaluation), or
//! a `return` (where the ghost variable `res` is bound to the return
//! value).
//!
//! A snapshot's heap contains the cells *reachable from the in-scope stack
//! variables* — exactly what a debugger can walk from the locals. The
//! LLDB quirk the paper reports in §5.3 (a `free(x)` does not make the
//! memory unobservable, so traces through dangling pointers contain stale
//! cells) is reproduced by [`TraceConfig::observe_freed`]: freed cells
//! remain visible to the traversal and mark the snapshot *tainted*, which
//! is what makes the affected invariants spurious in Table 1.

use std::collections::BTreeSet;
use std::fmt;

use sling_logic::Symbol;
use sling_models::{Heap, Loc, Stack, StackHeapModel, Val};

/// A breakpoint location within the target function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// Function entry (preconditions).
    Entry,
    /// The `i`-th `return` statement in source order (postconditions).
    Exit(usize),
    /// A `@name;` statement.
    Label(Symbol),
    /// A labelled loop head, hit before each condition evaluation
    /// (loop invariants).
    LoopHead(Symbol),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Entry => f.write_str("entry"),
            Location::Exit(i) => write!(f, "exit#{i}"),
            Location::Label(s) => write!(f, "@{s}"),
            Location::LoopHead(s) => write!(f, "loop@{s}"),
        }
    }
}

/// One observation: a stack-heap model at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Where it was taken.
    pub location: Location,
    /// The observed stack-heap model.
    pub model: StackHeapModel,
    /// True if the heap contains freed-but-observable cells (the paper's
    /// "invalid traces"; invariants derived from them are spurious).
    pub tainted: bool,
    /// Which dynamic activation of the target function this snapshot
    /// belongs to (1-based). Entry and exit snapshots with the same
    /// activation pair up for the frame-rule validation (§4.4).
    pub activation: u64,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// If true (default — mirrors LLDB), freed cells that are still
    /// referenced are included in snapshots and taint them.
    pub observe_freed: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            observe_freed: true,
        }
    }
}

/// Collects snapshots of a single target function during a run.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// The traced function.
    pub target: Symbol,
    /// Configuration.
    pub config: TraceConfig,
    /// Snapshots in execution order.
    pub snapshots: Vec<Snapshot>,
}

impl Tracer {
    /// Creates a tracer for `target` with the given configuration.
    pub fn new(target: Symbol, config: TraceConfig) -> Tracer {
        Tracer {
            target,
            config,
            snapshots: Vec::new(),
        }
    }

    /// Records a snapshot. `live` and `freed` are the interpreter's two
    /// heap views; the snapshot heap is the subset reachable from `roots`
    /// — typically the pointer values of *every* frame on the call stack,
    /// the way a debugger walks the whole backtrace (see the §4.4
    /// discussion: inner activations still observe outer frames' cells).
    pub fn record(
        &mut self,
        location: Location,
        stack: Stack,
        roots: &[Val],
        live: &Heap,
        freed: &Heap,
        activation: u64,
    ) {
        let (heap, tainted) = reachable_view(roots, live, freed, self.config.observe_freed);
        self.snapshots.push(Snapshot {
            location,
            model: StackHeapModel::new(stack, heap),
            tainted,
            activation,
        });
    }

    /// Snapshots taken at `location`, in execution order.
    pub fn at(&self, location: Location) -> Vec<&Snapshot> {
        self.snapshots
            .iter()
            .filter(|s| s.location == location)
            .collect()
    }

    /// The distinct locations observed, in source-independent (sorted)
    /// order.
    pub fn locations(&self) -> Vec<Location> {
        let set: BTreeSet<Location> = self.snapshots.iter().map(|s| s.location).collect();
        set.into_iter().collect()
    }
}

/// Computes the sub-heap reachable from the root values, walking `live`
/// cells and — when `observe_freed` — `freed` cells as well. Returns the
/// view and whether any freed cell leaked into it.
fn reachable_view(roots: &[Val], live: &Heap, freed: &Heap, observe_freed: bool) -> (Heap, bool) {
    let mut out = Heap::new();
    let mut tainted = false;
    let mut work: Vec<Loc> = roots.iter().filter_map(|v| v.as_addr()).collect();
    let mut seen: BTreeSet<Loc> = BTreeSet::new();
    while let Some(loc) = work.pop() {
        if !seen.insert(loc) {
            continue;
        }
        let cell = if let Some(c) = live.get(loc) {
            Some(c)
        } else if observe_freed {
            let c = freed.get(loc);
            if c.is_some() {
                tainted = true;
            }
            c
        } else {
            None
        };
        let Some(cell) = cell else { continue };
        out.insert(loc, cell.clone());
        work.extend(cell.out_edges());
    }
    (out, tainted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_models::HeapCell;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn l(n: u64) -> Loc {
        Loc::new(n)
    }

    fn cell(next: Val) -> HeapCell {
        HeapCell::new(sym("N"), vec![next])
    }

    #[test]
    fn snapshot_is_reachable_subset() {
        let mut live = Heap::new();
        live.insert(l(1), cell(Val::Addr(l(2))));
        live.insert(l(2), cell(Val::Nil));
        live.insert(l(9), cell(Val::Nil)); // unreachable
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(l(1)));
        let mut t = Tracer::new(sym("f"), TraceConfig::default());
        let roots: Vec<Val> = stack.iter().map(|(_, v)| v).collect();
        t.record(Location::Entry, stack, &roots, &live, &Heap::new(), 1);
        let snap = &t.snapshots[0];
        assert_eq!(snap.model.heap.len(), 2);
        assert!(!snap.model.heap.contains(l(9)));
        assert!(!snap.tainted);
    }

    #[test]
    fn freed_cells_taint_when_observed() {
        let mut live = Heap::new();
        live.insert(l(1), cell(Val::Addr(l(2))));
        let mut freed = Heap::new();
        freed.insert(l(2), cell(Val::Nil));
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(l(1)));

        let mut t = Tracer::new(
            sym("f"),
            TraceConfig {
                observe_freed: true,
            },
        );
        let roots: Vec<Val> = stack.iter().map(|(_, v)| v).collect();
        t.record(Location::Entry, stack.clone(), &roots, &live, &freed, 1);
        assert!(t.snapshots[0].tainted);
        assert_eq!(t.snapshots[0].model.heap.len(), 2);

        let mut t = Tracer::new(
            sym("f"),
            TraceConfig {
                observe_freed: false,
            },
        );
        t.record(Location::Entry, stack, &roots, &live, &freed, 1);
        assert!(!t.snapshots[0].tainted);
        assert_eq!(t.snapshots[0].model.heap.len(), 1);
    }

    #[test]
    fn at_filters_by_location() {
        let mut t = Tracer::new(sym("f"), TraceConfig::default());
        t.record(
            Location::Entry,
            Stack::new(),
            &[],
            &Heap::new(),
            &Heap::new(),
            1,
        );
        t.record(
            Location::Exit(0),
            Stack::new(),
            &[],
            &Heap::new(),
            &Heap::new(),
            1,
        );
        t.record(
            Location::Entry,
            Stack::new(),
            &[],
            &Heap::new(),
            &Heap::new(),
            1,
        );
        assert_eq!(t.at(Location::Entry).len(), 2);
        assert_eq!(t.at(Location::Exit(0)).len(), 1);
        assert_eq!(t.locations().len(), 2);
    }

    #[test]
    fn location_display() {
        assert_eq!(Location::Entry.to_string(), "entry");
        assert_eq!(Location::Exit(1).to_string(), "exit#1");
        assert_eq!(Location::Label(sym("L3")).to_string(), "@L3");
        assert_eq!(Location::LoopHead(sym("inv")).to_string(), "loop@inv");
    }
}
