//! Static checks for MiniC: name resolution and type checking.
//!
//! The checker enforces:
//!
//! * structures are unique, fields are unique, pointer fields name known
//!   structures;
//! * functions are unique; parameters and locals are well-typed; no
//!   variable shadowing (so a snapshot's stack is unambiguous);
//! * conditions are `bool`; arithmetic is over `int`; equality comparisons
//!   are between same-typed values; `->` is applied to pointers with the
//!   named field; calls match arity and parameter types;
//! * `return` values match the declared return type;
//! * breakpoint labels (statement labels and loop labels) are unique per
//!   function.
//!
//! "All paths return" is *not* checked statically: falling off the end of
//! a non-void function is a runtime error, mirroring C's undefined
//! behaviour without the undefinedness.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sling_logic::{Span, Symbol};

use crate::ast::*;

/// A static error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Checks a program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
///
/// # Examples
///
/// ```
/// let p = sling_lang::parse_program(
///     "struct Node { next: Node*; }
///      fn len(x: Node*) -> int {
///          var n: int = 0;
///          while (x != null) { n = n + 1; x = x->next; }
///          return n;
///      }",
/// )?;
/// sling_lang::check_program(&p)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_program(program: &Program) -> Result<(), TypeError> {
    let mut structs: BTreeMap<Symbol, &StructDecl> = BTreeMap::new();
    for s in &program.structs {
        if structs.insert(s.name, s).is_some() {
            return Err(TypeError {
                message: format!("duplicate struct `{}`", s.name),
                span: s.span,
            });
        }
        let mut names = BTreeSet::new();
        for (fname, _) in &s.fields {
            if !names.insert(*fname) {
                return Err(TypeError {
                    message: format!("duplicate field `{fname}` in struct `{}`", s.name),
                    span: s.span,
                });
            }
        }
    }
    // Pointer fields must name known structs.
    for s in &program.structs {
        for (fname, fty) in &s.fields {
            if let TyExpr::Ptr(t) = fty {
                if !structs.contains_key(t) {
                    return Err(TypeError {
                        message: format!("field `{fname}` points to unknown struct `{t}`"),
                        span: s.span,
                    });
                }
            }
            if *fty == TyExpr::Void {
                return Err(TypeError {
                    message: format!("field `{fname}` cannot be void"),
                    span: s.span,
                });
            }
        }
    }

    let mut funcs: BTreeMap<Symbol, &FuncDecl> = BTreeMap::new();
    for f in &program.funcs {
        if funcs.insert(f.name, f).is_some() {
            return Err(TypeError {
                message: format!("duplicate function `{}`", f.name),
                span: f.span,
            });
        }
    }

    for f in &program.funcs {
        Checker {
            structs: &structs,
            funcs: &funcs,
            func: f,
            scopes: Vec::new(),
            labels: BTreeSet::new(),
        }
        .check_func()?;
    }
    Ok(())
}

struct Checker<'a> {
    structs: &'a BTreeMap<Symbol, &'a StructDecl>,
    funcs: &'a BTreeMap<Symbol, &'a FuncDecl>,
    func: &'a FuncDecl,
    scopes: Vec<BTreeMap<Symbol, TyExpr>>,
    labels: BTreeSet<Symbol>,
}

impl Checker<'_> {
    fn check_func(mut self) -> Result<(), TypeError> {
        let mut top = BTreeMap::new();
        for p in &self.func.params {
            self.check_value_ty(p.ty, self.func.span)?;
            if top.insert(p.name, p.ty).is_some() {
                return Err(TypeError {
                    message: format!("duplicate parameter `{}`", p.name),
                    span: self.func.span,
                });
            }
        }
        self.scopes.push(top);
        let body = self.func.body.clone();
        self.check_block(&body)?;
        Ok(())
    }

    fn check_value_ty(&self, ty: TyExpr, span: Span) -> Result<(), TypeError> {
        match ty {
            TyExpr::Ptr(t) if !self.structs.contains_key(&t) => Err(TypeError {
                message: format!("unknown struct `{t}`"),
                span,
            }),
            TyExpr::Void => Err(TypeError {
                message: "void is not a value type".into(),
                span,
            }),
            _ => Ok(()),
        }
    }

    fn lookup(&self, name: Symbol) -> Option<TyExpr> {
        self.scopes.iter().rev().find_map(|s| s.get(&name).copied())
    }

    fn declare(&mut self, name: Symbol, ty: TyExpr, span: Span) -> Result<(), TypeError> {
        if self.lookup(name).is_some() {
            return Err(TypeError {
                message: format!("variable `{name}` shadows an existing binding"),
                span,
            });
        }
        self.scopes.last_mut().expect("scope").insert(name, ty);
        Ok(())
    }

    fn check_block(&mut self, block: &Block) -> Result<(), TypeError> {
        self.scopes.push(BTreeMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), TypeError> {
        match &stmt.kind {
            StmtKind::VarDecl { name, ty, init } => {
                self.check_value_ty(*ty, stmt.span)?;
                if let Some(e) = init {
                    let ety = self.check_expr(e)?;
                    self.compat(*ty, ety, e.span)?;
                }
                self.declare(*name, *ty, stmt.span)
            }
            StmtKind::Assign { lhs, rhs } => {
                let lty = match lhs {
                    LValue::Var(v) => self.lookup(*v).ok_or_else(|| TypeError {
                        message: format!("unknown variable `{v}`"),
                        span: stmt.span,
                    })?,
                    LValue::Field(base, field) => self.field_ty(base, *field)?,
                };
                let rty = self.check_expr(rhs)?;
                self.compat(lty, rty, rhs.span)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cty = self.check_expr(cond)?;
                self.compat(TyExpr::Bool, cty, cond.span)?;
                self.check_block(then_blk)?;
                if let Some(e) = else_blk {
                    self.check_block(e)?;
                }
                Ok(())
            }
            StmtKind::While { label, cond, body } => {
                if let Some(l) = label {
                    self.declare_label(*l, stmt.span)?;
                }
                let cty = self.check_expr(cond)?;
                self.compat(TyExpr::Bool, cty, cond.span)?;
                self.check_block(body)
            }
            StmtKind::Return(value) => match (value, self.func.ret) {
                (None, TyExpr::Void) => Ok(()),
                (None, ret) => Err(TypeError {
                    message: format!("function returns {ret}; `return;` has no value"),
                    span: stmt.span,
                }),
                (Some(_), TyExpr::Void) => Err(TypeError {
                    message: "void function returns a value".into(),
                    span: stmt.span,
                }),
                (Some(e), ret) => {
                    let ety = self.check_expr(e)?;
                    self.compat(ret, ety, e.span)
                }
            },
            StmtKind::Free(e) => {
                let ty = self.check_expr(e)?;
                match ty {
                    TyExpr::Ptr(_) => Ok(()),
                    other => Err(TypeError {
                        message: format!("free() needs a pointer, got {other}"),
                        span: e.span,
                    }),
                }
            }
            StmtKind::ExprStmt(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            StmtKind::Label(l) => self.declare_label(*l, stmt.span),
        }
    }

    fn declare_label(&mut self, l: Symbol, span: Span) -> Result<(), TypeError> {
        if !self.labels.insert(l) {
            return Err(TypeError {
                message: format!("duplicate breakpoint label `@{l}` in `{}`", self.func.name),
                span,
            });
        }
        Ok(())
    }

    fn field_ty(&mut self, base: &Expr, field: Symbol) -> Result<TyExpr, TypeError> {
        let bty = self.check_expr(base)?;
        let TyExpr::Ptr(sname) = bty else {
            return Err(TypeError {
                message: format!("`->` applied to non-pointer ({bty})"),
                span: base.span,
            });
        };
        let sdef = self.structs.get(&sname).expect("checked");
        sdef.fields
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError {
                message: format!("struct `{sname}` has no field `{field}`"),
                span: base.span,
            })
    }

    /// `expected` is satisfied by `actual`? Null is compatible with any
    /// pointer (the parser types `null` as a wildcard pointer).
    fn compat(&self, expected: TyExpr, actual: TyExpr, span: Span) -> Result<(), TypeError> {
        let ok = match (expected, actual) {
            (a, b) if a == b => true,
            (TyExpr::Ptr(_), TyExpr::Ptr(n)) if n == null_struct() => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(TypeError {
                message: format!("expected {expected}, found {actual}"),
                span,
            })
        }
    }

    fn check_expr(&mut self, e: &Expr) -> Result<TyExpr, TypeError> {
        match &e.kind {
            ExprKind::Int(_) => Ok(TyExpr::Int),
            ExprKind::Bool(_) => Ok(TyExpr::Bool),
            ExprKind::Null => Ok(TyExpr::Ptr(null_struct())),
            ExprKind::Var(v) => self.lookup(*v).ok_or_else(|| TypeError {
                message: format!("unknown variable `{v}`"),
                span: e.span,
            }),
            ExprKind::Field(base, f) => self.field_ty(base, *f),
            ExprKind::New(sname, inits) => {
                let Some(sdef) = self.structs.get(sname).copied() else {
                    return Err(TypeError {
                        message: format!("unknown struct `{sname}`"),
                        span: e.span,
                    });
                };
                let mut seen = BTreeSet::new();
                for (fname, fexpr) in inits {
                    let Some((_, fty)) = sdef.fields.iter().find(|(f, _)| f == fname) else {
                        return Err(TypeError {
                            message: format!("struct `{sname}` has no field `{fname}`"),
                            span: fexpr.span,
                        });
                    };
                    if !seen.insert(*fname) {
                        return Err(TypeError {
                            message: format!("field `{fname}` initialized twice"),
                            span: fexpr.span,
                        });
                    }
                    let ety = self.check_expr(fexpr)?;
                    self.compat(*fty, ety, fexpr.span)?;
                }
                Ok(TyExpr::Ptr(*sname))
            }
            ExprKind::Unary(op, inner) => {
                let ity = self.check_expr(inner)?;
                match op {
                    UnOp::Neg => self
                        .compat(TyExpr::Int, ity, inner.span)
                        .map(|_| TyExpr::Int),
                    UnOp::Not => self
                        .compat(TyExpr::Bool, ity, inner.span)
                        .map(|_| TyExpr::Bool),
                }
            }
            ExprKind::Binary(op, a, b) => {
                let aty = self.check_expr(a)?;
                let bty = self.check_expr(b)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        self.compat(TyExpr::Int, aty, a.span)?;
                        self.compat(TyExpr::Int, bty, b.span)?;
                        Ok(TyExpr::Int)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.compat(TyExpr::Int, aty, a.span)?;
                        self.compat(TyExpr::Int, bty, b.span)?;
                        Ok(TyExpr::Bool)
                    }
                    BinOp::Eq | BinOp::Ne => {
                        // Same type, or pointer vs null in either order.
                        let ok = aty == bty
                            || matches!((aty, bty),
                                (TyExpr::Ptr(_), TyExpr::Ptr(n)) | (TyExpr::Ptr(n), TyExpr::Ptr(_))
                                    if n == null_struct());
                        if !ok {
                            return Err(TypeError {
                                message: format!("cannot compare {aty} with {bty}"),
                                span: e.span,
                            });
                        }
                        Ok(TyExpr::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        self.compat(TyExpr::Bool, aty, a.span)?;
                        self.compat(TyExpr::Bool, bty, b.span)?;
                        Ok(TyExpr::Bool)
                    }
                }
            }
            ExprKind::Call(fname, args) => {
                let Some(fdef) = self.funcs.get(fname).copied() else {
                    return Err(TypeError {
                        message: format!("unknown function `{fname}`"),
                        span: e.span,
                    });
                };
                if fdef.params.len() != args.len() {
                    return Err(TypeError {
                        message: format!(
                            "`{fname}` expects {} arguments, got {}",
                            fdef.params.len(),
                            args.len()
                        ),
                        span: e.span,
                    });
                }
                for (p, a) in fdef.params.iter().zip(args) {
                    let aty = self.check_expr(a)?;
                    self.compat(p.ty, aty, a.span)?;
                }
                Ok(fdef.ret)
            }
        }
    }
}

/// The wildcard "struct name" used to type `null` before unification.
/// Never clashes with user structs because `!` is not a valid identifier
/// character in MiniC.
pub(crate) fn null_struct() -> Symbol {
    Symbol::intern("!null")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), TypeError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_concat() {
        check(
            "struct Node { next: Node*; prev: Node*; }
             fn concat(x: Node*, y: Node*) -> Node* {
                 if (x == null) { return y; }
                 else {
                     var tmp: Node* = concat(x->next, y);
                     x->next = tmp;
                     if (tmp != null) { tmp->prev = x; }
                     return x;
                 }
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check("fn f() { x = 3; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_shadowing() {
        let err = check("fn f(x: int) { if (x == 0) { var x: int = 1; } }").unwrap_err();
        assert!(err.message.contains("shadows"));
    }

    #[test]
    fn rejects_bad_field() {
        let err = check("struct Node { next: Node*; } fn f(x: Node*) -> Node* { return x->prev; }")
            .unwrap_err();
        assert!(err.message.contains("no field"));
    }

    #[test]
    fn rejects_int_condition() {
        let err = check("fn f(n: int) { if (n) { } }").unwrap_err();
        assert!(err.message.contains("expected bool"));
    }

    #[test]
    fn rejects_ptr_arith() {
        let err = check("struct Node { next: Node*; } fn f(x: Node*) -> int { return x + 1; }")
            .unwrap_err();
        assert!(err.message.contains("expected int"));
    }

    #[test]
    fn null_compares_with_any_pointer() {
        check(
            "struct A { x: int; } struct B { y: int; }
             fn f(a: A*, b: B*) -> bool { return a == null || b != null; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_cross_struct_compare() {
        let err = check(
            "struct A { x: int; } struct B { y: int; }
             fn f(a: A*, b: B*) -> bool { return a == b; }",
        )
        .unwrap_err();
        assert!(err.message.contains("cannot compare"));
    }

    #[test]
    fn rejects_duplicate_label() {
        let err = check("fn f() { @a; @a; }").unwrap_err();
        assert!(err.message.contains("duplicate breakpoint label"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let err = check("fn f() -> int { return true; }").unwrap_err();
        assert!(err.message.contains("expected int"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err =
            check("fn g(n: int) -> int { return n; } fn f() -> int { return g(); }").unwrap_err();
        assert!(err.message.contains("expects 1 arguments"));
    }

    #[test]
    fn rejects_unknown_ptr_field_struct() {
        let err = check("struct A { x: Ghost*; }").unwrap_err();
        assert!(err.message.contains("unknown struct"));
    }

    #[test]
    fn new_with_bad_init_rejected() {
        let err =
            check("struct Node { next: Node*; } fn f() -> Node* { return new Node { data: 3 }; }")
                .unwrap_err();
        assert!(err.message.contains("no field"));
    }
}
