//! Lexer for MiniC source text.

use std::fmt;

use sling_logic::{Span, Symbol};

/// A MiniC token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(Symbol),
    /// Integer literal.
    Int(i64),
    /// `struct`
    Struct,
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `free`
    Free,
    /// `new`
    New,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `void`
    KwVoid,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "identifier `{s}`"),
            Tok::Int(k) => return write!(f, "integer `{k}`"),
            Tok::Struct => "`struct`",
            Tok::Fn => "`fn`",
            Tok::Var => "`var`",
            Tok::If => "`if`",
            Tok::Else => "`else`",
            Tok::While => "`while`",
            Tok::Return => "`return`",
            Tok::Free => "`free`",
            Tok::New => "`new`",
            Tok::Null => "`null`",
            Tok::True => "`true`",
            Tok::False => "`false`",
            Tok::KwInt => "`int`",
            Tok::KwBool => "`bool`",
            Tok::KwVoid => "`void`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::Semi => "`;`",
            Tok::Comma => "`,`",
            Tok::Colon => "`:`",
            Tok::Arrow => "`->`",
            Tok::At => "`@`",
            Tok::Assign => "`=`",
            Tok::Eq => "`==`",
            Tok::Ne => "`!=`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Slash => "`/`",
            Tok::Percent => "`%`",
            Tok::Bang => "`!`",
            Tok::AndAnd => "`&&`",
            Tok::OrOr => "`||`",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniLexError {
    /// Description.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl fmt::Display for MiniLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for MiniLexError {}

/// Tokenizes MiniC source. `//` comments run to end of line; `/* ... */`
/// comments may span lines (no nesting).
///
/// # Errors
///
/// Returns [`MiniLexError`] on unexpected characters, unterminated block
/// comments, or integer overflow.
pub fn lex(source: &str) -> Result<Vec<(Tok, Span)>, MiniLexError> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    macro_rules! push1 {
        ($tok:expr) => {{
            out.push(($tok, Span::new(i as u32, i as u32 + 1)));
            i += 1;
        }};
    }
    macro_rules! push2 {
        ($tok:expr) => {{
            out.push(($tok, Span::new(i as u32, i as u32 + 2)));
            i += 2;
        }};
    }
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(MiniLexError {
                            message: "unterminated block comment".into(),
                            span: Span::new(start as u32, b.len() as u32),
                        });
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => push1!(Tok::LParen),
            ')' => push1!(Tok::RParen),
            '{' => push1!(Tok::LBrace),
            '}' => push1!(Tok::RBrace),
            ';' => push1!(Tok::Semi),
            ',' => push1!(Tok::Comma),
            ':' => push1!(Tok::Colon),
            '@' => push1!(Tok::At),
            '+' => push1!(Tok::Plus),
            '*' => push1!(Tok::Star),
            '/' => push1!(Tok::Slash),
            '%' => push1!(Tok::Percent),
            '-' => {
                if b.get(i + 1) == Some(&b'>') {
                    push2!(Tok::Arrow)
                } else {
                    push1!(Tok::Minus)
                }
            }
            '=' => {
                if b.get(i + 1) == Some(&b'=') {
                    push2!(Tok::Eq)
                } else {
                    push1!(Tok::Assign)
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    push2!(Tok::Ne)
                } else {
                    push1!(Tok::Bang)
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    push2!(Tok::Le)
                } else {
                    push1!(Tok::Lt)
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    push2!(Tok::Ge)
                } else {
                    push1!(Tok::Gt)
                }
            }
            '&' => {
                if b.get(i + 1) == Some(&b'&') {
                    push2!(Tok::AndAnd)
                } else {
                    return Err(MiniLexError {
                        message: "expected `&&`".into(),
                        span: Span::new(i as u32, i as u32 + 1),
                    });
                }
            }
            '|' => {
                if b.get(i + 1) == Some(&b'|') {
                    push2!(Tok::OrOr)
                } else {
                    return Err(MiniLexError {
                        message: "expected `||`".into(),
                        span: Span::new(i as u32, i as u32 + 1),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| MiniLexError {
                    message: format!("integer literal `{text}` overflows i64"),
                    span: Span::new(start as u32, i as u32),
                })?;
                out.push((Tok::Int(value), Span::new(start as u32, i as u32)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let span = Span::new(start as u32, i as u32);
                let tok = match text {
                    "struct" => Tok::Struct,
                    "fn" => Tok::Fn,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "free" => Tok::Free,
                    "new" => Tok::New,
                    "null" => Tok::Null,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "int" => Tok::KwInt,
                    "bool" => Tok::KwBool,
                    "void" => Tok::KwVoid,
                    _ => Tok::Ident(Symbol::intern(text)),
                };
                out.push((tok, span));
            }
            other => {
                return Err(MiniLexError {
                    message: format!("unexpected character `{other}`"),
                    span: Span::new(i as u32, i as u32 + 1),
                });
            }
        }
    }
    out.push((Tok::Eof, Span::new(b.len() as u32, b.len() as u32)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_function_header() {
        let toks = lex("fn concat(x: Node*, y: Node*) -> Node* {").unwrap();
        assert_eq!(toks[0].0, Tok::Fn);
        assert!(matches!(toks[1].0, Tok::Ident(_)));
        assert_eq!(toks.last().unwrap().0, Tok::Eof);
    }

    #[test]
    fn lex_label() {
        let toks = lex("@L1;").unwrap();
        assert_eq!(toks[0].0, Tok::At);
        assert_eq!(toks[1].0, Tok::Ident(Symbol::intern("L1")));
        assert_eq!(toks[2].0, Tok::Semi);
    }

    #[test]
    fn lex_operators() {
        let ops = lex("== != <= >= && || -> = < >").unwrap();
        let kinds: Vec<Tok> = ops.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Arrow,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comments() {
        let toks = lex("a // line\n b /* block\n still */ c").unwrap();
        assert_eq!(toks.len(), 4); // a b c eof
    }

    #[test]
    fn unterminated_block_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn single_amp_rejected() {
        assert!(lex("a & b").is_err());
    }
}
