//! MiniC: the program-and-debugger substrate of the SLING reproduction.
//!
//! The paper runs C benchmarks under LLDB to snapshot stack-heap states at
//! breakpoints (§2.2, §5.2). This crate provides the equivalent substrate,
//! built from scratch (see DESIGN.md §1):
//!
//! * a small C-like language — structs, pointers, `new`/`free`, lexically
//!   scoped locals, labelled loops, recursion ([`parse_program`],
//!   [`check_program`]);
//! * a tree-walking interpreter with runtime-fault detection
//!   ([`Vm`], [`RtError`]) — seeded bugs in the corpus surface as faults
//!   that abort trace collection exactly like the paper's segfaulting
//!   programs;
//! * an embedded debugger ([`Tracer`]) that records [`Snapshot`]s at
//!   function entry, `@label;` statements, labelled loop heads, and every
//!   `return` (with the ghost variable `res`), including the LLDB
//!   freed-memory quirk of §5.3;
//! * random input generation ([`gen_list`], [`gen_tree`], ...) replacing
//!   the paper's random size-10 structures.
//!
//! # Example
//!
//! Trace the paper's `concat` on two lists and look at the entry models:
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sling_lang::*;
//! use sling_logic::Symbol;
//!
//! let program = parse_program(
//!     "struct Node { next: Node*; prev: Node*; }
//!      fn concat(x: Node*, y: Node*) -> Node* {
//!          if (x == null) { return y; }
//!          var tmp: Node* = concat(x->next, y);
//!          x->next = tmp;
//!          if (tmp != null) { tmp->prev = x; }
//!          return x;
//!      }",
//! )?;
//! check_program(&program)?;
//!
//! let mut vm = Vm::new(&program, VmConfig::default());
//! let layout = ListLayout {
//!     ty: Symbol::intern("Node"), nfields: 2, next: 0, prev: Some(1), data: None,
//! };
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = gen_list(&mut vm.heap, &layout, 3, DataOrder::Random, &mut rng);
//! let y = gen_list(&mut vm.heap, &layout, 2, DataOrder::Random, &mut rng);
//!
//! vm.set_tracer(Tracer::new(Symbol::intern("concat"), TraceConfig::default()));
//! vm.call(Symbol::intern("concat"), &[x, y])?;
//! let tracer = vm.take_tracer().unwrap();
//! assert_eq!(tracer.at(Location::Entry).len(), 4); // 3 recursive + base
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod interp;
mod lexer;
mod parser;
mod testgen;
mod trace;
mod types;

pub use ast::{
    BinOp, Block, Expr, ExprKind, FuncDecl, LValue, Param, Program, Stmt, StmtKind, StructDecl,
    TyExpr, UnOp,
};
pub use interp::{RtError, RtHeap, Vm, VmConfig};
pub use lexer::{lex as lex_minic, MiniLexError, Tok};
pub use parser::{parse_program, MiniParseError};
pub use testgen::{
    gen_circular_list, gen_list, gen_program, gen_tree, DataOrder, ListLayout, TreeKind, TreeLayout,
};
pub use trace::{Location, Snapshot, TraceConfig, Tracer};
pub use types::{check_program, TypeError};
