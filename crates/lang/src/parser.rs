//! Recursive-descent parser for MiniC.
//!
//! Grammar sketch:
//!
//! ```text
//! program  := (struct_decl | func_decl)*
//! struct   := "struct" IDENT "{" (IDENT ":" ty ";")* "}"
//! func     := "fn" IDENT "(" (param ("," param)*)? ")" ("->" ty)? block
//! param    := IDENT ":" ty
//! ty       := "int" | "bool" | IDENT "*"
//! block    := "{" stmt* "}"
//! stmt     := "var" IDENT ":" ty ("=" expr)? ";"
//!           | "if" "(" expr ")" block ("else" (block | if_stmt))?
//!           | "while" ("@" IDENT)? "(" expr ")" block
//!           | "return" expr? ";"
//!           | "free" "(" expr ")" ";"
//!           | "@" IDENT ";"
//!           | expr ("=" expr)? ";"        // assignment or expr statement
//! expr     := or-chain of comparisons over additive/multiplicative terms
//! primary  := INT | "true" | "false" | "null" | IDENT | IDENT "(" args ")"
//!           | "new" IDENT ("{" IDENT ":" expr ("," IDENT ":" expr)* "}")?
//!           | "(" expr ")" ; postfix "->" IDENT repeatedly
//! ```

use std::fmt;

use sling_logic::{Span, Symbol};

use crate::ast::*;
use crate::lexer::{lex, MiniLexError, Tok};

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniParseError {
    /// Description.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl fmt::Display for MiniParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for MiniParseError {}

impl From<MiniLexError> for MiniParseError {
    fn from(e: MiniLexError) -> MiniParseError {
        MiniParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a whole MiniC program.
///
/// # Errors
///
/// Returns [`MiniParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// let program = sling_lang::parse_program(
///     "struct Node { next: Node*; }
///      fn id(x: Node*) -> Node* { return x; }",
/// )?;
/// assert_eq!(program.structs.len(), 1);
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), sling_lang::MiniParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, MiniParseError> {
    let mut p = P::new(source)?;
    let mut program = Program::default();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Struct => program.structs.push(p.struct_decl()?),
            Tok::Fn => program.funcs.push(p.func_decl()?),
            other => return Err(p.err(format!("expected `struct` or `fn`, found {other}"))),
        }
    }
    Ok(program)
}

struct P {
    toks: Vec<(Tok, Span)>,
    pos: usize,
}

impl P {
    fn new(source: &str) -> Result<P, MiniParseError> {
        Ok(P {
            toks: lex(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Tok {
        self.toks[self.pos].0
    }

    fn peek2(&self) -> Tok {
        self.toks.get(self.pos + 1).map(|t| t.0).unwrap_or(Tok::Eof)
    }

    fn span(&self) -> Span {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> (Tok, Span) {
        let t = self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: String) -> MiniParseError {
        MiniParseError {
            message,
            span: self.span(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<Span, MiniParseError> {
        if self.peek() == want {
            Ok(self.bump().1)
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<Symbol, MiniParseError> {
        match self.peek() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn ty(&mut self) -> Result<TyExpr, MiniParseError> {
        match self.peek() {
            Tok::KwInt => {
                self.bump();
                Ok(TyExpr::Int)
            }
            Tok::KwBool => {
                self.bump();
                Ok(TyExpr::Bool)
            }
            Tok::KwVoid => {
                self.bump();
                Ok(TyExpr::Void)
            }
            Tok::Ident(s) => {
                self.bump();
                self.expect(Tok::Star)?;
                Ok(TyExpr::Ptr(s))
            }
            other => Err(self.err(format!("expected a type, found {other}"))),
        }
    }

    fn struct_decl(&mut self) -> Result<StructDecl, MiniParseError> {
        let lo = self.expect(Tok::Struct)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != Tok::RBrace {
            let fname = self.ident()?;
            self.expect(Tok::Colon)?;
            let fty = self.ty()?;
            self.expect(Tok::Semi)?;
            fields.push((fname, fty));
        }
        let hi = self.expect(Tok::RBrace)?;
        Ok(StructDecl {
            name,
            fields,
            span: lo.to(hi),
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, MiniParseError> {
        let lo = self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Tok::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let pty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty: pty,
                });
                if self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let hi = self.expect(Tok::RParen)?;
        let ret = if self.peek() == Tok::Arrow {
            self.bump();
            self.ty()?
        } else {
            TyExpr::Void
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            span: lo.to(hi),
        })
    }

    fn block(&mut self) -> Result<Block, MiniParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, MiniParseError> {
        let lo = self.span();
        match self.peek() {
            Tok::Var => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                let init = if self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                let hi = self.expect(Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::VarDecl { name, ty, init },
                    span: lo.to(hi),
                })
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                let label = if self.peek() == Tok::At {
                    self.bump();
                    Some(self.ident()?)
                } else {
                    None
                };
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::While { label, cond, body },
                    span: lo,
                })
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let hi = self.expect(Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: lo.to(hi),
                })
            }
            Tok::Free => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                let hi = self.expect(Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Free(e),
                    span: lo.to(hi),
                })
            }
            Tok::At => {
                self.bump();
                let name = self.ident()?;
                let hi = self.expect(Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Label(name),
                    span: lo.to(hi),
                })
            }
            _ => {
                // Assignment or expression statement.
                let e = self.expr()?;
                if self.peek() == Tok::Assign {
                    self.bump();
                    let rhs = self.expr()?;
                    let hi = self.expect(Tok::Semi)?;
                    let lhs = match e.kind {
                        ExprKind::Var(v) => LValue::Var(v),
                        ExprKind::Field(base, f) => LValue::Field(*base, f),
                        _ => {
                            return Err(MiniParseError {
                                message: "invalid assignment target".into(),
                                span: e.span,
                            })
                        }
                    };
                    Ok(Stmt {
                        kind: StmtKind::Assign { lhs, rhs },
                        span: lo.to(hi),
                    })
                } else {
                    let hi = self.expect(Tok::Semi)?;
                    Ok(Stmt {
                        kind: StmtKind::ExprStmt(e),
                        span: lo.to(hi),
                    })
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, MiniParseError> {
        let lo = self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.peek() == Tok::Else {
            self.bump();
            if self.peek() == Tok::If {
                // `else if`: wrap in a one-statement block.
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            span: lo,
        })
    }

    // Precedence climbing: || < && < comparisons < additive < multiplicative
    // < unary < postfix.
    fn expr(&mut self) -> Result<Expr, MiniParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, MiniParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, MiniParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, MiniParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, MiniParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, MiniParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, MiniParseError> {
        match self.peek() {
            Tok::Minus => {
                let lo = self.bump().1;
                let inner = self.unary_expr()?;
                let span = lo.to(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(inner)),
                    span,
                })
            }
            Tok::Bang => {
                let lo = self.bump().1;
                let inner = self.unary_expr()?;
                let span = lo.to(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(inner)),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, MiniParseError> {
        let mut e = self.primary_expr()?;
        while self.peek() == Tok::Arrow {
            self.bump();
            let field = self.ident()?;
            let span = e.span.to(self.span());
            e = Expr {
                kind: ExprKind::Field(Box::new(e), field),
                span,
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, MiniParseError> {
        let span = self.span();
        match self.peek() {
            Tok::Int(k) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(k),
                    span,
                })
            }
            Tok::True => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Bool(true),
                    span,
                })
            }
            Tok::False => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Bool(false),
                    span,
                })
            }
            Tok::Null => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    span,
                })
            }
            Tok::New => {
                self.bump();
                let ty = self.ident()?;
                let mut inits = Vec::new();
                if self.peek() == Tok::LBrace {
                    self.bump();
                    if self.peek() != Tok::RBrace {
                        loop {
                            let f = self.ident()?;
                            self.expect(Tok::Colon)?;
                            let e = self.expr()?;
                            inits.push((f, e));
                            if self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                Ok(Expr {
                    kind: ExprKind::New(ty, inits),
                    span,
                })
            }
            Tok::Ident(name) => {
                if self.peek2() == Tok::LParen {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let hi = self.expect(Tok::RParen)?;
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        span: span.to(hi),
                    })
                } else {
                    self.bump();
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        span,
                    })
                }
            }
            Tok::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONCAT: &str = r#"
        struct Node { next: Node*; prev: Node*; }

        fn concat(x: Node*, y: Node*) -> Node* {
            @L1;
            if (x == null) {
                @L2;
                return y;
            } else {
                var tmp: Node* = concat(x->next, y);
                x->next = tmp;
                if (tmp != null) { tmp->prev = x; }
                @L3;
                return x;
            }
        }
    "#;

    #[test]
    fn parse_concat() {
        let p = parse_program(CONCAT).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, TyExpr::Ptr(Symbol::intern("Node")));
    }

    #[test]
    fn locations_of_concat() {
        use crate::trace::Location;
        let p = parse_program(CONCAT).unwrap();
        let locs = p.locations_of(Symbol::intern("concat"));
        assert_eq!(
            locs,
            vec![
                Location::Entry,
                Location::Label(Symbol::intern("L1")),
                Location::Label(Symbol::intern("L2")),
                Location::Exit(0),
                Location::Label(Symbol::intern("L3")),
                Location::Exit(1),
            ]
        );
    }

    #[test]
    fn parse_while_with_label() {
        let p = parse_program(
            "fn f(x: Node*) {
                 while @inv (x != null) { x = x->next; }
             }
             struct Node { next: Node*; }",
        )
        .unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::While { label, .. } => assert_eq!(*label, Some(Symbol::intern("inv"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_new_with_inits() {
        let p = parse_program(
            "fn f() -> Node* { return new Node { next: null }; } struct Node { next: Node*; }",
        )
        .unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::New(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_field_chain_assignment() {
        let p = parse_program("fn f(x: Node*) { x->next->next = x; } struct Node { next: Node*; }")
            .unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::Assign {
                lhs: LValue::Field(base, _),
                ..
            } => {
                assert!(matches!(base.kind, ExprKind::Field(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_else_if_chain() {
        let p = parse_program(
            "fn f(n: int) -> int {
                 if (n < 0) { return 0; }
                 else if (n == 0) { return 1; }
                 else { return 2; }
             }",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn precedence() {
        let p = parse_program("fn f(a: int, b: int) -> bool { return a + 2 * b == 7; }").unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Binary(BinOp::Eq, lhs, _) => {
                    assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::Add, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_assignment_target() {
        assert!(parse_program("fn f() { 3 = 4; }").is_err());
    }

    #[test]
    fn reject_garbage_toplevel() {
        assert!(parse_program("var x: int;").is_err());
    }
}
