//! Random data-structure input generation (the paper's §5.2 setup).
//!
//! The paper runs each benchmark on "empty and randomly generated data
//! structure inputs of a fixed size of 10". This module builds those
//! inputs directly in a [`RtHeap`]: singly/doubly linked lists (optionally
//! sorted or circular), binary trees, BSTs, AVL-shaped and red-black-shaped
//! trees.
//!
//! Generators are parameterized by a *layout* — which field index plays
//! which structural role — because the corpus uses many record layouts
//! (`Node{next,prev}`, `Cell{next,data}`, `TreeNode{left,right,parent,v}`,
//! ...). All randomness flows through a caller-provided seeded RNG, so runs
//! are reproducible.

use rand::rngs::StdRng;
use rand::Rng;

use sling_logic::{Span, Symbol};
use sling_models::{Loc, Val};

use crate::ast::{
    BinOp, Block, Expr, ExprKind, FuncDecl, LValue, Param, Program, Stmt, StmtKind, StructDecl,
    TyExpr, UnOp,
};
use crate::interp::RtHeap;

/// Field layout of a list node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListLayout {
    /// Structure name.
    pub ty: Symbol,
    /// Total number of fields.
    pub nfields: usize,
    /// Index of the `next` pointer.
    pub next: usize,
    /// Index of the `prev` pointer, for doubly linked lists.
    pub prev: Option<usize>,
    /// Index of an integer payload field.
    pub data: Option<usize>,
}

/// Field layout of a binary tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLayout {
    /// Structure name.
    pub ty: Symbol,
    /// Total number of fields.
    pub nfields: usize,
    /// Index of the left-child pointer.
    pub left: usize,
    /// Index of the right-child pointer.
    pub right: usize,
    /// Index of the parent pointer, if the layout has one.
    pub parent: Option<usize>,
    /// Index of an integer key field.
    pub data: Option<usize>,
    /// Index of a color field (0 = black, 1 = red) for red-black trees.
    pub color: Option<usize>,
}

/// How list payloads are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOrder {
    /// Uniformly random values.
    Random,
    /// Non-decreasing values (sorted-list benchmarks).
    Sorted,
    /// Non-increasing values.
    Reversed,
}

fn blank(layout_nfields: usize) -> Vec<Val> {
    vec![Val::Nil; layout_nfields]
}

fn payload(rng: &mut StdRng, n: usize, order: DataOrder) -> Vec<i64> {
    let mut vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    match order {
        DataOrder::Random => {}
        DataOrder::Sorted => vals.sort_unstable(),
        DataOrder::Reversed => {
            vals.sort_unstable();
            vals.reverse();
        }
    }
    vals
}

/// Builds a nil-terminated list of `size` nodes; returns the head
/// (`Val::Nil` when `size == 0`). Doubly linked if the layout has `prev`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sling_lang::{gen_list, DataOrder, ListLayout, RtHeap};
/// use sling_logic::Symbol;
///
/// let mut heap = RtHeap::new();
/// let layout = ListLayout {
///     ty: Symbol::intern("Node"), nfields: 2, next: 0, prev: Some(1), data: None,
/// };
/// let mut rng = StdRng::seed_from_u64(7);
/// let head = gen_list(&mut heap, &layout, 10, DataOrder::Random, &mut rng);
/// assert!(head.as_addr().is_some());
/// assert_eq!(heap.live().len(), 10);
/// ```
pub fn gen_list(
    heap: &mut RtHeap,
    layout: &ListLayout,
    size: usize,
    order: DataOrder,
    rng: &mut StdRng,
) -> Val {
    let vals = payload(rng, size, order);
    let mut locs: Vec<Loc> = Vec::with_capacity(size);
    for &v in &vals {
        let mut fields = blank(layout.nfields);
        if let Some(d) = layout.data {
            fields[d] = Val::Int(v);
        }
        locs.push(heap.alloc(layout.ty, fields));
    }
    link_list(heap, layout, &locs, false);
    locs.first().map(|l| Val::Addr(*l)).unwrap_or(Val::Nil)
}

/// Builds a circular list: the last node's `next` points back to the head
/// (and the head's `prev` to the last node, for doubly linked layouts).
/// Returns the head (`Val::Nil` when `size == 0`).
pub fn gen_circular_list(
    heap: &mut RtHeap,
    layout: &ListLayout,
    size: usize,
    order: DataOrder,
    rng: &mut StdRng,
) -> Val {
    let vals = payload(rng, size, order);
    let mut locs: Vec<Loc> = Vec::with_capacity(size);
    for &v in &vals {
        let mut fields = blank(layout.nfields);
        if let Some(d) = layout.data {
            fields[d] = Val::Int(v);
        }
        locs.push(heap.alloc(layout.ty, fields));
    }
    link_list(heap, layout, &locs, true);
    locs.first().map(|l| Val::Addr(*l)).unwrap_or(Val::Nil)
}

fn link_list(heap: &mut RtHeap, layout: &ListLayout, locs: &[Loc], circular: bool) {
    let n = locs.len();
    for (i, &loc) in locs.iter().enumerate() {
        let next = if i + 1 < n {
            Val::Addr(locs[i + 1])
        } else if circular && n > 0 {
            Val::Addr(locs[0])
        } else {
            Val::Nil
        };
        set_field(heap, loc, layout.next, next);
        if let Some(p) = layout.prev {
            let prev = if i > 0 {
                Val::Addr(locs[i - 1])
            } else if circular && n > 0 {
                Val::Addr(locs[n - 1])
            } else {
                Val::Nil
            };
            set_field(heap, loc, p, prev);
        }
    }
}

/// The kind of binary tree to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Random shape, random keys.
    Random,
    /// Binary search tree built by inserting random distinct keys.
    Bst,
    /// Height-balanced BST (valid AVL) built from sorted keys.
    Balanced,
    /// Balanced BST with a valid red-black coloring
    /// (requires [`TreeLayout::color`]).
    RedBlack,
}

/// Builds a binary tree of `size` nodes; returns the root (`Val::Nil` when
/// `size == 0`). Parent pointers are filled when the layout has them.
///
/// # Panics
///
/// Panics if `kind == TreeKind::RedBlack` and the layout has no color
/// field.
pub fn gen_tree(
    heap: &mut RtHeap,
    layout: &TreeLayout,
    size: usize,
    kind: TreeKind,
    rng: &mut StdRng,
) -> Val {
    if size == 0 {
        return Val::Nil;
    }
    let root = match kind {
        TreeKind::Random => build_random_tree(heap, layout, size, rng),
        TreeKind::Bst => build_bst(heap, layout, size, rng),
        TreeKind::Balanced | TreeKind::RedBlack => {
            let mut keys: Vec<i64> = Vec::with_capacity(size);
            let mut k = 0i64;
            for _ in 0..size {
                k += rng.gen_range(1i64..10);
                keys.push(k);
            }
            let root = build_balanced(heap, layout, &keys);
            if kind == TreeKind::RedBlack {
                let color = layout
                    .color
                    .expect("red-black generation needs a color field");
                paint_red_black(heap, layout, root, color);
            }
            root
        }
    };
    if let Some(p) = layout.parent {
        fill_parents(heap, layout, root, Val::Nil, p);
    }
    Val::Addr(root)
}

fn new_node(heap: &mut RtHeap, layout: &TreeLayout, key: i64) -> Loc {
    let mut fields = blank(layout.nfields);
    if let Some(d) = layout.data {
        fields[d] = Val::Int(key);
    }
    if let Some(c) = layout.color {
        fields[c] = Val::Int(0);
    }
    heap.alloc(layout.ty, fields)
}

fn build_random_tree(heap: &mut RtHeap, layout: &TreeLayout, size: usize, rng: &mut StdRng) -> Loc {
    let root = new_node(heap, layout, rng.gen_range(0..100));
    let mut nodes = vec![root];
    while nodes.len() < size {
        // Pick a random node with a free child slot.
        let candidates: Vec<Loc> = nodes
            .iter()
            .copied()
            .filter(|&n| {
                let cell = heap.live().get(n).expect("just allocated");
                cell.fields[layout.left] == Val::Nil || cell.fields[layout.right] == Val::Nil
            })
            .collect();
        let parent = candidates[rng.gen_range(0..candidates.len())];
        let child = new_node(heap, layout, rng.gen_range(0..100));
        let cell = heap.live().get(parent).expect("exists");
        let side = if cell.fields[layout.left] == Val::Nil
            && (cell.fields[layout.right] != Val::Nil || rng.gen_bool(0.5))
        {
            layout.left
        } else {
            layout.right
        };
        set_field(heap, parent, side, Val::Addr(child));
        nodes.push(child);
    }
    root
}

fn build_bst(heap: &mut RtHeap, layout: &TreeLayout, size: usize, rng: &mut StdRng) -> Loc {
    let data = layout.data.expect("BST generation needs a key field");
    // Distinct keys so lookups are unambiguous.
    let mut keys: Vec<i64> = Vec::new();
    while keys.len() < size {
        let k = rng.gen_range(0..1000);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let root = new_node(heap, layout, keys[0]);
    for &k in &keys[1..] {
        let node = new_node(heap, layout, k);
        let mut cur = root;
        loop {
            let cell = heap.live().get(cur).expect("exists");
            let ck = cell.fields[data].as_int().expect("int key");
            let side = if k < ck { layout.left } else { layout.right };
            match cell.fields[side] {
                Val::Addr(next) => cur = next,
                _ => {
                    set_field(heap, cur, side, Val::Addr(node));
                    break;
                }
            }
        }
    }
    root
}

fn build_balanced(heap: &mut RtHeap, layout: &TreeLayout, keys: &[i64]) -> Loc {
    let mid = keys.len() / 2;
    let node = new_node(heap, layout, keys[mid]);
    if mid > 0 {
        let left = build_balanced(heap, layout, &keys[..mid]);
        set_field(heap, node, layout.left, Val::Addr(left));
    }
    if mid + 1 < keys.len() {
        let right = build_balanced(heap, layout, &keys[mid + 1..]);
        set_field(heap, node, layout.right, Val::Addr(right));
    }
    node
}

/// Colors a balanced tree as a valid red-black tree: nodes at the maximum
/// depth are red (unless the root), everything else black. Because the
/// balanced builder keeps depths within one level, every nil leaf then
/// sees the same number of black nodes.
fn paint_red_black(heap: &mut RtHeap, layout: &TreeLayout, root: Loc, color: usize) {
    fn depths(heap: &RtHeap, layout: &TreeLayout, n: Loc, d: usize, out: &mut Vec<(Loc, usize)>) {
        out.push((n, d));
        let cell = heap.live().get(n).expect("exists");
        if let Val::Addr(l) = cell.fields[layout.left] {
            depths(heap, layout, l, d + 1, out);
        }
        if let Val::Addr(r) = cell.fields[layout.right] {
            depths(heap, layout, r, d + 1, out);
        }
    }
    let mut all = Vec::new();
    depths(heap, layout, root, 1, &mut all);
    let max_d = all.iter().map(|(_, d)| *d).max().unwrap_or(1);
    for (loc, d) in all {
        let red = d == max_d && max_d > 1;
        set_field(heap, loc, color, Val::Int(red as i64));
    }
}

fn fill_parents(heap: &mut RtHeap, layout: &TreeLayout, node: Loc, parent: Val, pidx: usize) {
    set_field(heap, node, pidx, parent);
    let cell = heap.live().get(node).expect("exists").clone();
    if let Val::Addr(l) = cell.fields[layout.left] {
        fill_parents(heap, layout, l, Val::Addr(node), pidx);
    }
    if let Val::Addr(r) = cell.fields[layout.right] {
        fill_parents(heap, layout, r, Val::Addr(node), pidx);
    }
}

/// Generates a small random MiniC [`Program`]: one structure and one to
/// three functions whose bodies mix declarations, assignments,
/// conditionals, labelled loops, breakpoint labels, allocation, `free`,
/// calls, and returns.
///
/// The output is syntactically well-formed but *not* guaranteed to
/// typecheck or terminate — it exercises AST-level passes (the static
/// analyzer, location enumeration) which must accept any tree the parser
/// could produce without panicking. All randomness flows through the
/// seeded RNG, so equal seeds yield equal programs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sling_lang::gen_program;
///
/// let a = gen_program(&mut StdRng::seed_from_u64(1));
/// let b = gen_program(&mut StdRng::seed_from_u64(1));
/// assert_eq!(a, b);
/// assert!(!a.funcs.is_empty());
/// ```
pub fn gen_program(rng: &mut StdRng) -> Program {
    let ty = Symbol::intern("GenNode");
    let structs = vec![StructDecl {
        name: ty,
        fields: vec![
            (Symbol::intern("next"), TyExpr::Ptr(ty)),
            (Symbol::intern("data"), TyExpr::Int),
        ],
        span: Span::DUMMY,
    }];
    let nfuncs = rng.gen_range(1..=3);
    let mut gen = ProgGen {
        rng,
        ty,
        funcs: (0..nfuncs)
            .map(|i| Symbol::intern(&format!("gen_f{i}")))
            .collect(),
        labels: 0,
        pos: 0,
    };
    let funcs = (0..nfuncs).map(|i| gen.func(i)).collect();
    Program { structs, funcs }
}

/// Statement-nesting depth budget for [`gen_program`] bodies.
const GEN_STMT_DEPTH: usize = 3;
/// Expression-nesting depth budget for [`gen_program`] expressions.
const GEN_EXPR_DEPTH: usize = 3;

/// Working state of the [`gen_program`] generator.
struct ProgGen<'a> {
    rng: &'a mut StdRng,
    /// The one structure type every pointer refers to.
    ty: Symbol,
    /// All function names, so calls (including recursive ones) resolve.
    funcs: Vec<Symbol>,
    /// Counter for fresh breakpoint/loop label names.
    labels: usize,
    /// Monotone source-position counter for deterministic spans.
    pos: u32,
}

impl ProgGen<'_> {
    fn span(&mut self) -> Span {
        self.pos += 1;
        Span::new(self.pos, self.pos + 1)
    }

    fn label(&mut self) -> Symbol {
        self.labels += 1;
        Symbol::intern(&format!("gl{}", self.labels))
    }

    /// A name from a small fixed pool — collisions between declarations
    /// and uses are the point (they produce init/liveness variety).
    fn var(&mut self) -> Symbol {
        const POOL: [&str; 7] = ["x", "n", "a", "b", "c", "p", "q"];
        Symbol::intern(POOL[self.rng.gen_range(0..POOL.len())])
    }

    fn ty_expr(&mut self) -> TyExpr {
        match self.rng.gen_range(0..3) {
            0 => TyExpr::Int,
            1 => TyExpr::Bool,
            _ => TyExpr::Ptr(self.ty),
        }
    }

    fn func(&mut self, idx: usize) -> FuncDecl {
        let params = vec![
            Param {
                name: Symbol::intern("x"),
                ty: TyExpr::Ptr(self.ty),
            },
            Param {
                name: Symbol::intern("n"),
                ty: TyExpr::Int,
            },
        ];
        let mut body = self.block(GEN_STMT_DEPTH);
        // Ensure at least one exit location per function.
        let ret = Stmt {
            kind: StmtKind::Return(Some(self.expr(GEN_EXPR_DEPTH))),
            span: self.span(),
        };
        body.stmts.push(ret);
        FuncDecl {
            name: self.funcs[idx],
            params,
            ret: TyExpr::Int,
            body,
            span: Span::DUMMY,
        }
    }

    fn block(&mut self, depth: usize) -> Block {
        let n = self.rng.gen_range(0..=4);
        Block {
            stmts: (0..n).map(|_| self.stmt(depth)).collect(),
        }
    }

    fn stmt(&mut self, depth: usize) -> Stmt {
        // Leaf-only at depth 0; nested forms otherwise.
        let pick = if depth == 0 {
            self.rng.gen_range(0..6)
        } else {
            self.rng.gen_range(0..8)
        };
        let kind = match pick {
            0 => StmtKind::VarDecl {
                name: self.var(),
                ty: self.ty_expr(),
                init: if self.rng.gen_bool(0.5) {
                    Some(self.expr(GEN_EXPR_DEPTH))
                } else {
                    None
                },
            },
            1 => StmtKind::Assign {
                lhs: if self.rng.gen_bool(0.7) {
                    LValue::Var(self.var())
                } else {
                    LValue::Field(self.expr(1), Symbol::intern("next"))
                },
                rhs: self.expr(GEN_EXPR_DEPTH),
            },
            2 => StmtKind::Label(self.label()),
            3 => StmtKind::Free(self.expr(1)),
            4 => StmtKind::ExprStmt(self.expr(GEN_EXPR_DEPTH)),
            5 => StmtKind::Return(if self.rng.gen_bool(0.7) {
                Some(self.expr(GEN_EXPR_DEPTH))
            } else {
                None
            }),
            6 => StmtKind::If {
                cond: self.expr(GEN_EXPR_DEPTH),
                then_blk: self.block(depth - 1),
                else_blk: if self.rng.gen_bool(0.5) {
                    Some(self.block(depth - 1))
                } else {
                    None
                },
            },
            _ => StmtKind::While {
                label: self.rng.gen_bool(0.6).then(|| self.label()),
                cond: self.expr(GEN_EXPR_DEPTH),
                body: self.block(depth - 1),
            },
        };
        Stmt {
            kind,
            span: self.span(),
        }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        let pick = if depth == 0 {
            self.rng.gen_range(0..4)
        } else {
            self.rng.gen_range(0..9)
        };
        let kind = match pick {
            0 => ExprKind::Int(self.rng.gen_range(-5..10)),
            1 => ExprKind::Bool(self.rng.gen_bool(0.5)),
            2 => ExprKind::Null,
            3 => ExprKind::Var(self.var()),
            4 => ExprKind::Field(Box::new(self.expr(depth - 1)), Symbol::intern("next")),
            5 => {
                let fields = if self.rng.gen_bool(0.5) {
                    vec![(Symbol::intern("next"), self.expr(depth - 1))]
                } else {
                    Vec::new()
                };
                ExprKind::New(self.ty, fields)
            }
            6 => {
                let op = if self.rng.gen_bool(0.5) {
                    UnOp::Neg
                } else {
                    UnOp::Not
                };
                ExprKind::Unary(op, Box::new(self.expr(depth - 1)))
            }
            7 => {
                const OPS: [BinOp; 13] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                ExprKind::Binary(
                    op,
                    Box::new(self.expr(depth - 1)),
                    Box::new(self.expr(depth - 1)),
                )
            }
            _ => {
                let callee = self.funcs[self.rng.gen_range(0..self.funcs.len())];
                let args = (0..self.rng.gen_range(0..=2))
                    .map(|_| self.expr(depth - 1))
                    .collect();
                ExprKind::Call(callee, args)
            }
        };
        Expr {
            kind,
            span: self.span(),
        }
    }
}

fn set_field(heap: &mut RtHeap, loc: Loc, idx: usize, val: Val) {
    // Direct structural write; cells were allocated by this module.
    let cell = heap
        .live_mut(loc)
        .expect("generator writes only to cells it allocated");
    cell.fields[idx] = val;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn list_layout(dll: bool, data: bool) -> ListLayout {
        ListLayout {
            ty: Symbol::intern("G"),
            nfields: 3,
            next: 0,
            prev: dll.then_some(1),
            data: data.then_some(2),
        }
    }

    fn tree_layout() -> TreeLayout {
        TreeLayout {
            ty: Symbol::intern("T"),
            nfields: 5,
            left: 0,
            right: 1,
            parent: Some(2),
            data: Some(3),
            color: Some(4),
        }
    }

    fn walk_list(heap: &RtHeap, head: Val, next: usize, limit: usize) -> Vec<Loc> {
        let mut out = Vec::new();
        let mut cur = head;
        while let Val::Addr(l) = cur {
            if out.contains(&l) || out.len() > limit {
                break;
            }
            out.push(l);
            cur = heap.live().get(l).unwrap().fields[next];
        }
        out
    }

    #[test]
    fn sll_is_nil_terminated() {
        let mut heap = RtHeap::new();
        let head = gen_list(
            &mut heap,
            &list_layout(false, true),
            10,
            DataOrder::Random,
            &mut rng(),
        );
        let locs = walk_list(&heap, head, 0, 20);
        assert_eq!(locs.len(), 10);
        let last = heap.live().get(*locs.last().unwrap()).unwrap();
        assert_eq!(last.fields[0], Val::Nil);
    }

    #[test]
    fn empty_list_is_nil() {
        let mut heap = RtHeap::new();
        assert_eq!(
            gen_list(
                &mut heap,
                &list_layout(false, false),
                0,
                DataOrder::Random,
                &mut rng()
            ),
            Val::Nil
        );
        assert!(heap.live().is_empty());
    }

    #[test]
    fn dll_prev_pointers_consistent() {
        let mut heap = RtHeap::new();
        let head = gen_list(
            &mut heap,
            &list_layout(true, false),
            5,
            DataOrder::Random,
            &mut rng(),
        );
        let locs = walk_list(&heap, head, 0, 10);
        assert_eq!(locs.len(), 5);
        assert_eq!(heap.live().get(locs[0]).unwrap().fields[1], Val::Nil);
        for w in locs.windows(2) {
            assert_eq!(heap.live().get(w[1]).unwrap().fields[1], Val::Addr(w[0]));
        }
    }

    #[test]
    fn sorted_list_is_sorted() {
        let mut heap = RtHeap::new();
        let head = gen_list(
            &mut heap,
            &list_layout(false, true),
            10,
            DataOrder::Sorted,
            &mut rng(),
        );
        let locs = walk_list(&heap, head, 0, 20);
        let vals: Vec<i64> = locs
            .iter()
            .map(|l| heap.live().get(*l).unwrap().fields[2].as_int().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
    }

    #[test]
    fn circular_list_wraps() {
        let mut heap = RtHeap::new();
        let head = gen_circular_list(
            &mut heap,
            &list_layout(true, false),
            4,
            DataOrder::Random,
            &mut rng(),
        );
        let Val::Addr(first) = head else {
            panic!("non-empty")
        };
        let locs = walk_list(&heap, head, 0, 10);
        assert_eq!(locs.len(), 4);
        let last = *locs.last().unwrap();
        assert_eq!(heap.live().get(last).unwrap().fields[0], Val::Addr(first));
        assert_eq!(heap.live().get(first).unwrap().fields[1], Val::Addr(last));
    }

    #[test]
    fn bst_property_holds() {
        let mut heap = RtHeap::new();
        let layout = tree_layout();
        let root = gen_tree(&mut heap, &layout, 10, TreeKind::Bst, &mut rng());
        let Val::Addr(root) = root else {
            panic!("non-empty")
        };
        fn check(heap: &RtHeap, layout: &TreeLayout, n: Loc, lo: i64, hi: i64, count: &mut usize) {
            *count += 1;
            let cell = heap.live().get(n).unwrap();
            let k = cell.fields[layout.data.unwrap()].as_int().unwrap();
            assert!(lo <= k && k < hi, "BST violation: {k} not in [{lo},{hi})");
            if let Val::Addr(l) = cell.fields[layout.left] {
                check(heap, layout, l, lo, k, count);
            }
            if let Val::Addr(r) = cell.fields[layout.right] {
                check(heap, layout, r, k, hi, count);
            }
        }
        let mut count = 0;
        check(&heap, &layout, root, i64::MIN, i64::MAX, &mut count);
        assert_eq!(count, 10);
    }

    #[test]
    fn balanced_tree_is_avl() {
        let mut heap = RtHeap::new();
        let layout = tree_layout();
        let root = gen_tree(&mut heap, &layout, 12, TreeKind::Balanced, &mut rng());
        let Val::Addr(root) = root else {
            panic!("non-empty")
        };
        fn height(heap: &RtHeap, layout: &TreeLayout, n: Val) -> i64 {
            match n {
                Val::Addr(l) => {
                    let cell = heap.live().get(l).unwrap();
                    let lh = height(heap, layout, cell.fields[layout.left]);
                    let rh = height(heap, layout, cell.fields[layout.right]);
                    assert!((lh - rh).abs() <= 1, "AVL violation");
                    1 + lh.max(rh)
                }
                _ => 0,
            }
        }
        height(&heap, &layout, Val::Addr(root));
    }

    #[test]
    fn red_black_invariants() {
        let mut heap = RtHeap::new();
        let layout = tree_layout();
        for size in [1usize, 3, 7, 10, 12] {
            let mut heap2 = RtHeap::new();
            let root = gen_tree(&mut heap2, &layout, size, TreeKind::RedBlack, &mut rng());
            let Val::Addr(root) = root else {
                panic!("non-empty")
            };
            let cidx = layout.color.unwrap();
            // Root is black.
            assert_eq!(heap2.live().get(root).unwrap().fields[cidx], Val::Int(0));
            // No red-red edges; equal black height to all nil leaves.
            fn bh(
                heap: &RtHeap,
                layout: &TreeLayout,
                n: Val,
                parent_red: bool,
                cidx: usize,
            ) -> i64 {
                match n {
                    Val::Addr(l) => {
                        let cell = heap.live().get(l).unwrap();
                        let red = cell.fields[cidx] == Val::Int(1);
                        assert!(!(red && parent_red), "red-red violation");
                        let lb = bh(heap, layout, cell.fields[layout.left], red, cidx);
                        let rb = bh(heap, layout, cell.fields[layout.right], red, cidx);
                        assert_eq!(lb, rb, "black-height violation");
                        lb + (!red as i64)
                    }
                    _ => 1,
                }
            }
            bh(&heap2, &layout, Val::Addr(root), false, cidx);
            let _ = &mut heap; // silence unused in the loop
        }
    }

    #[test]
    fn parent_pointers_filled() {
        let mut heap = RtHeap::new();
        let layout = tree_layout();
        let root = gen_tree(&mut heap, &layout, 8, TreeKind::Random, &mut rng());
        let Val::Addr(root) = root else {
            panic!("non-empty")
        };
        assert_eq!(heap.live().get(root).unwrap().fields[2], Val::Nil);
        fn check(heap: &RtHeap, layout: &TreeLayout, n: Loc) {
            let cell = heap.live().get(n).unwrap().clone();
            for side in [layout.left, layout.right] {
                if let Val::Addr(c) = cell.fields[side] {
                    assert_eq!(heap.live().get(c).unwrap().fields[2], Val::Addr(n));
                    check(heap, layout, c);
                }
            }
        }
        check(&heap, &layout, root);
    }

    #[test]
    fn gen_program_is_deterministic_and_well_formed() {
        for seed in 0..50u64 {
            let a = gen_program(&mut StdRng::seed_from_u64(seed));
            let b = gen_program(&mut StdRng::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.structs.len(), 1);
            assert!(!a.funcs.is_empty());
            for f in &a.funcs {
                // Every function ends in a return, so it has an exit
                // location on top of entry.
                assert!(a.locations_of(f.name).len() >= 2);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let build = || {
            let mut heap = RtHeap::new();
            let mut r = StdRng::seed_from_u64(123);
            gen_list(
                &mut heap,
                &list_layout(true, true),
                10,
                DataOrder::Random,
                &mut r,
            );
            format!("{}", heap.live())
        };
        assert_eq!(build(), build());
    }
}
