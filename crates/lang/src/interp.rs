//! The MiniC interpreter with its embedded debugger.
//!
//! [`Vm`] executes a type-checked [`Program`] by tree walking. Its runtime
//! heap ([`RtHeap`]) keeps *freed* cells separate from live ones: program
//! accesses to freed cells are use-after-free errors, but the tracer can
//! still observe them — reproducing the LLDB behaviour the paper describes
//! in §5.3 ("a `free(x)` statement does not immediately free the pointer
//! `x` so LLDB still observes (now invalid) heap values").
//!
//! The VM keeps an explicit frame stack so that snapshots can see memory
//! reachable from *any* frame — like a debugger walking the whole
//! backtrace. This matters for fidelity: in the paper's §4.4 example the
//! innermost activation of `concat` still observes the outer lists'
//! cells, which is only possible if the debugger's heap view includes
//! outer frames' roots.
//!
//! Runtime errors (null dereference, use-after-free, step/stack limits for
//! non-terminating runs) abort the run, which is how the corpus's seeded
//! segfault bugs (the `∗` programs of Table 1) yield *no traces*.

use std::collections::BTreeMap;
use std::fmt;

use sling_logic::{Span, Symbol};
use sling_models::{Heap, HeapCell, Loc, Stack, Val};

use crate::ast::*;
use crate::trace::{Location, Tracer};
use crate::types::null_struct;

/// A runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// Dereference of `null`.
    NullDeref(Span),
    /// Access to a freed cell.
    UseAfterFree(Span),
    /// Access to a never-allocated address.
    InvalidDeref(Span),
    /// `free` of something not (or no longer) allocated.
    InvalidFree(Span),
    /// Division or remainder by zero.
    DivByZero(Span),
    /// Integer overflow.
    Overflow(Span),
    /// The step limit was exceeded (non-termination guard).
    StepLimit,
    /// The call-depth limit was exceeded (runaway recursion guard).
    StackOverflow,
    /// A non-void function fell off its end.
    NoReturn(Symbol),
    /// Reference to a function that does not exist (escaped the checker).
    UnknownFunction(Symbol),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::NullDeref(s) => write!(f, "null dereference at {s}"),
            RtError::UseAfterFree(s) => write!(f, "use after free at {s}"),
            RtError::InvalidDeref(s) => write!(f, "invalid dereference at {s}"),
            RtError::InvalidFree(s) => write!(f, "invalid free at {s}"),
            RtError::DivByZero(s) => write!(f, "division by zero at {s}"),
            RtError::Overflow(s) => write!(f, "integer overflow at {s}"),
            RtError::StepLimit => f.write_str("step limit exceeded (likely non-termination)"),
            RtError::StackOverflow => f.write_str("call depth limit exceeded"),
            RtError::NoReturn(n) => write!(f, "non-void function `{n}` fell off its end"),
            RtError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
        }
    }
}

impl std::error::Error for RtError {}

/// The runtime heap: live cells, freed-but-observable cells, and a bump
/// allocator for fresh locations.
#[derive(Debug, Clone, Default)]
pub struct RtHeap {
    live: Heap,
    freed: Heap,
    next: u64,
}

impl RtHeap {
    /// An empty heap.
    pub fn new() -> RtHeap {
        RtHeap::default()
    }

    /// Allocates a fresh cell, returning its location.
    pub fn alloc(&mut self, ty: Symbol, fields: Vec<Val>) -> Loc {
        self.next += 1;
        let loc = Loc::new(self.next);
        self.live.insert(loc, HeapCell::new(ty, fields));
        loc
    }

    /// Frees the cell at `loc`: it moves to the freed (zombie) view.
    #[allow(clippy::result_unit_err)]
    pub fn free(&mut self, loc: Loc) -> Result<(), ()> {
        match self.live.remove(loc) {
            Some(cell) => {
                self.freed.insert(loc, cell);
                Ok(())
            }
            None => Err(()),
        }
    }

    /// The live heap (what the program can access).
    pub fn live(&self) -> &Heap {
        &self.live
    }

    /// The freed cells (what only the debugger can still see).
    pub fn freed(&self) -> &Heap {
        &self.freed
    }

    /// Mutable access to a live cell (used by input generators to link
    /// structures after allocation).
    pub fn live_mut(&mut self, loc: Loc) -> Option<&mut HeapCell> {
        self.live.get_mut(loc)
    }

    /// Reads the live cell at `loc`, reporting the access `span` in the
    /// typed fault for freed ([`RtError::UseAfterFree`]) or
    /// never-allocated ([`RtError::InvalidDeref`]) locations.
    pub fn read(&self, loc: Loc, span: Span) -> Result<&HeapCell, RtError> {
        if let Some(c) = self.live.get(loc) {
            Ok(c)
        } else if self.freed.contains(loc) {
            Err(RtError::UseAfterFree(span))
        } else {
            Err(RtError::InvalidDeref(span))
        }
    }

    /// Writes field `idx` of the live cell at `loc`, with the same typed
    /// faults as [`RtHeap::read`] for freed or invalid locations.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the cell (the type checker
    /// guarantees field indices in checked programs).
    pub fn write(&mut self, loc: Loc, idx: usize, val: Val, span: Span) -> Result<(), RtError> {
        if let Some(c) = self.live.get_mut(loc) {
            c.fields[idx] = val;
            Ok(())
        } else if self.freed.contains(loc) {
            Err(RtError::UseAfterFree(span))
        } else {
            Err(RtError::InvalidDeref(span))
        }
    }
}

/// Interpreter limits.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Maximum number of executed statements/expressions.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            max_steps: 2_000_000,
            max_depth: 2_000,
        }
    }
}

/// Control flow out of a statement.
enum Flow {
    Normal,
    Return(Option<Val>),
}

struct Frame {
    func: Symbol,
    scopes: Vec<BTreeMap<Symbol, Val>>,
    /// Dynamic activation id of the traced function (0 if untraced).
    activation: u64,
}

impl Frame {
    fn lookup(&self, name: Symbol) -> Option<Val> {
        self.scopes.iter().rev().find_map(|s| s.get(&name).copied())
    }

    fn assign(&mut self, name: Symbol, val: Val) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(&name) {
                *slot = val;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: Symbol, val: Val) {
        self.scopes.last_mut().expect("scope").insert(name, val);
    }

    /// The in-scope variables as a logic-side stack model.
    fn as_stack(&self) -> Stack {
        self.scopes
            .iter()
            .flat_map(|s| s.iter().map(|(k, v)| (*k, *v)))
            .collect()
    }

    /// All pointer values held anywhere in this frame.
    fn roots(&self) -> impl Iterator<Item = Val> + '_ {
        self.scopes
            .iter()
            .flat_map(|s| s.values().copied())
            .filter(|v| v.is_pointer())
    }
}

/// The MiniC virtual machine.
///
/// # Examples
///
/// ```
/// use sling_lang::{check_program, parse_program, Vm, VmConfig};
/// use sling_models::Val;
///
/// let program = parse_program(
///     "fn add(a: int, b: int) -> int { return a + b; }",
/// )?;
/// check_program(&program)?;
/// let mut vm = Vm::new(&program, VmConfig::default());
/// let out = vm.call(sling_logic::Symbol::intern("add"), &[Val::Int(2), Val::Int(40)])?;
/// assert_eq!(out, Some(Val::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm<'p> {
    program: &'p Program,
    /// The runtime heap (exposed so input generators can build structures).
    pub heap: RtHeap,
    config: VmConfig,
    steps: u64,
    frames: Vec<Frame>,
    tracer: Option<Tracer>,
    /// Counter handing out activation ids for the traced function.
    activations: u64,
    /// Values passed as arguments to the outermost call: debugger roots
    /// that stay visible even when a callee frame does not mention them.
    entry_roots: Vec<Val>,
    /// Map from each function's return-statement span to its exit index.
    exit_indices: BTreeMap<(Symbol, Span), usize>,
    /// Struct name → (field name → index) for fast field resolution.
    field_index: BTreeMap<Symbol, BTreeMap<Symbol, usize>>,
    struct_defaults: BTreeMap<Symbol, Vec<Val>>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for a (type-checked) program.
    pub fn new(program: &'p Program, config: VmConfig) -> Vm<'p> {
        let mut exit_indices = BTreeMap::new();
        for f in &program.funcs {
            let mut idx = 0usize;
            collect_returns(&f.body, &mut |span| {
                exit_indices.insert((f.name, span), idx);
                idx += 1;
            });
        }
        let mut field_index = BTreeMap::new();
        let mut struct_defaults = BTreeMap::new();
        for s in &program.structs {
            let map: BTreeMap<Symbol, usize> = s
                .fields
                .iter()
                .enumerate()
                .map(|(i, (n, _))| (*n, i))
                .collect();
            field_index.insert(s.name, map);
            let defaults: Vec<Val> = s
                .fields
                .iter()
                .map(|(_, ty)| match ty {
                    TyExpr::Ptr(_) => Val::Nil,
                    _ => Val::Int(0),
                })
                .collect();
            struct_defaults.insert(s.name, defaults);
        }
        Vm {
            program,
            heap: RtHeap::new(),
            config,
            steps: 0,
            frames: Vec::new(),
            tracer: None,
            activations: 0,
            entry_roots: Vec::new(),
            exit_indices,
            field_index,
            struct_defaults,
        }
    }

    /// Installs a tracer that snapshots the target function's breakpoints.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer (with its snapshots).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// The number of traced-function activations so far — the value of
    /// the counter handing out activation ids, which is an upper bound
    /// on (and usually equal to) the largest id in any recorded
    /// snapshot. Callers that renumber activations across runs must
    /// offset by this counter, not by the largest *recorded* id: an
    /// activation that faults before its first snapshot still consumed
    /// an id.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Calls `func` with `args`; returns its value (`None` for void).
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] on any runtime fault; the tracer keeps the
    /// snapshots recorded before the fault.
    pub fn call(&mut self, func: Symbol, args: &[Val]) -> Result<Option<Val>, RtError> {
        if self.frames.is_empty() {
            self.entry_roots = args.iter().copied().filter(|v| v.is_pointer()).collect();
        }
        let decl = self
            .program
            .func(func)
            .ok_or(RtError::UnknownFunction(func))?;
        assert_eq!(decl.params.len(), args.len(), "arity checked by caller");
        if self.frames.len() >= self.config.max_depth {
            return Err(RtError::StackOverflow);
        }
        let mut scope = BTreeMap::new();
        for (p, a) in decl.params.iter().zip(args) {
            scope.insert(p.name, *a);
        }
        let activation = match &self.tracer {
            Some(t) if t.target == func => {
                self.activations += 1;
                self.activations
            }
            _ => 0,
        };
        self.frames.push(Frame {
            func,
            scopes: vec![scope],
            activation,
        });
        self.snapshot(Location::Entry, None);
        let result = self.exec_block(&decl.body);
        self.frames.pop();
        match result? {
            Flow::Return(v) => Ok(v),
            Flow::Normal if decl.ret == TyExpr::Void => Ok(None),
            Flow::Normal => Err(RtError::NoReturn(func)),
        }
    }

    /// Allocates a structure instance directly (for input generators).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is unknown or `fields` has the wrong length.
    pub fn alloc(&mut self, ty: Symbol, fields: Vec<Val>) -> Loc {
        let n = self
            .field_index
            .get(&ty)
            .unwrap_or_else(|| panic!("unknown struct `{ty}`"))
            .len();
        assert_eq!(fields.len(), n, "field count for `{ty}`");
        self.heap.alloc(ty, fields)
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(RtError::StepLimit);
        }
        Ok(())
    }

    fn cur(&self) -> &Frame {
        self.frames.last().expect("a frame is active")
    }

    fn cur_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("a frame is active")
    }

    /// Takes a snapshot at `location` if the current frame belongs to the
    /// traced function. Heap roots come from *every* frame (plus the
    /// original call arguments), like a debugger walking the backtrace.
    fn snapshot(&mut self, location: Location, res: Option<Val>) {
        let Some(tracer) = self.tracer.as_mut() else {
            return;
        };
        let frame = self.frames.last().expect("a frame is active");
        if frame.func != tracer.target {
            return;
        }
        let mut stack = frame.as_stack();
        if let Some(v) = res {
            stack.bind(Symbol::intern("res"), v);
        }
        let mut roots: Vec<Val> = self.entry_roots.clone();
        for f in &self.frames {
            roots.extend(f.roots());
        }
        if let Some(v) = res {
            roots.push(v);
        }
        tracer.record(
            location,
            stack,
            &roots,
            &self.heap.live,
            &self.heap.freed,
            frame.activation,
        );
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow, RtError> {
        self.cur_mut().scopes.push(BTreeMap::new());
        let flow = self.exec_stmts(&block.stmts);
        self.cur_mut().scopes.pop();
        flow
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Flow, RtError> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RtError> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::VarDecl { name, ty, init } => {
                let val = match init {
                    Some(e) => self.eval(e)?,
                    None => match ty {
                        TyExpr::Ptr(_) => Val::Nil,
                        _ => Val::Int(0),
                    },
                };
                self.cur_mut().declare(*name, val);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, rhs } => {
                let val = self.eval(rhs)?;
                match lhs {
                    LValue::Var(v) => {
                        let ok = self.cur_mut().assign(*v, val);
                        debug_assert!(ok, "checker guarantees the variable exists");
                    }
                    LValue::Field(base, field) => {
                        let bval = self.eval(base)?;
                        let loc = self.expect_addr(bval, base.span)?;
                        let idx = self.field_idx(loc, *field, base.span)?;
                        self.heap.write(loc, idx, val, stmt.span)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.eval_bool(cond)? {
                    self.exec_block(then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { label, cond, body } => {
                loop {
                    if let Some(l) = label {
                        self.snapshot(Location::LoopHead(*l), None);
                    }
                    if !self.eval_bool(cond)? {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                    self.tick()?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                let idx = self
                    .exit_indices
                    .get(&(self.cur().func, stmt.span))
                    .copied()
                    .expect("return statements are indexed at Vm::new");
                self.snapshot(Location::Exit(idx), v);
                Ok(Flow::Return(v))
            }
            StmtKind::Free(e) => {
                let val = self.eval(e)?;
                let loc = self.expect_addr(val, e.span)?;
                self.heap
                    .free(loc)
                    .map_err(|_| RtError::InvalidFree(e.span))?;
                Ok(Flow::Normal)
            }
            StmtKind::ExprStmt(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Label(l) => {
                self.snapshot(Location::Label(*l), None);
                Ok(Flow::Normal)
            }
        }
    }

    fn expect_addr(&self, v: Val, span: Span) -> Result<Loc, RtError> {
        match v {
            Val::Addr(l) => Ok(l),
            Val::Nil => Err(RtError::NullDeref(span)),
            Val::Int(_) => Err(RtError::InvalidDeref(span)),
        }
    }

    fn field_idx(&self, loc: Loc, field: Symbol, span: Span) -> Result<usize, RtError> {
        // Resolve against the *dynamic* type of the cell: the static
        // checker already guarantees agreement.
        let cell = self.heap.read(loc, span)?;
        self.field_index
            .get(&cell.ty)
            .and_then(|m| m.get(&field))
            .copied()
            .ok_or(RtError::InvalidDeref(span))
    }

    fn eval_bool(&mut self, e: &Expr) -> Result<bool, RtError> {
        Ok(self.eval(e)? != Val::Int(0))
    }

    fn eval(&mut self, e: &Expr) -> Result<Val, RtError> {
        self.tick()?;
        match &e.kind {
            ExprKind::Int(k) => Ok(Val::Int(*k)),
            ExprKind::Bool(b) => Ok(Val::Int(*b as i64)),
            ExprKind::Null => Ok(Val::Nil),
            ExprKind::Var(v) => Ok(self
                .cur()
                .lookup(*v)
                .expect("checker guarantees the variable exists")),
            ExprKind::Field(base, f) => {
                let bval = self.eval(base)?;
                let loc = self.expect_addr(bval, base.span)?;
                let idx = self.field_idx(loc, *f, base.span)?;
                Ok(self.heap.read(loc, base.span)?.fields[idx])
            }
            ExprKind::New(ty, inits) => {
                debug_assert_ne!(*ty, null_struct());
                let mut fields = self
                    .struct_defaults
                    .get(ty)
                    .expect("checker guarantees the struct exists")
                    .clone();
                for (fname, fexpr) in inits {
                    let val = self.eval(fexpr)?;
                    let idx = self.field_index[ty][fname];
                    fields[idx] = val;
                }
                Ok(Val::Addr(self.heap.alloc(*ty, fields)))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => match v {
                        Val::Int(k) => k
                            .checked_neg()
                            .map(Val::Int)
                            .ok_or(RtError::Overflow(e.span)),
                        _ => Err(RtError::InvalidDeref(inner.span)),
                    },
                    UnOp::Not => Ok(Val::Int((v == Val::Int(0)) as i64)),
                }
            }
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b, e.span),
            ExprKind::Call(fname, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let out = self.call(*fname, &vals)?;
                // Void results only appear in expression statements
                // (checker-verified); represent as 0.
                Ok(out.unwrap_or(Val::Int(0)))
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr, span: Span) -> Result<Val, RtError> {
        // Short-circuit operators first.
        match op {
            BinOp::And => {
                return Ok(Val::Int((self.eval_bool(a)? && self.eval_bool(b)?) as i64));
            }
            BinOp::Or => {
                return Ok(Val::Int((self.eval_bool(a)? || self.eval_bool(b)?) as i64));
            }
            _ => {}
        }
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        let int = |v: Val, sp: Span| match v {
            Val::Int(k) => Ok(k),
            _ => Err(RtError::InvalidDeref(sp)),
        };
        match op {
            BinOp::Add => int(va, a.span)?
                .checked_add(int(vb, b.span)?)
                .map(Val::Int)
                .ok_or(RtError::Overflow(span)),
            BinOp::Sub => int(va, a.span)?
                .checked_sub(int(vb, b.span)?)
                .map(Val::Int)
                .ok_or(RtError::Overflow(span)),
            BinOp::Mul => int(va, a.span)?
                .checked_mul(int(vb, b.span)?)
                .map(Val::Int)
                .ok_or(RtError::Overflow(span)),
            BinOp::Div => {
                let d = int(vb, b.span)?;
                if d == 0 {
                    return Err(RtError::DivByZero(span));
                }
                int(va, a.span)?
                    .checked_div(d)
                    .map(Val::Int)
                    .ok_or(RtError::Overflow(span))
            }
            BinOp::Rem => {
                let d = int(vb, b.span)?;
                if d == 0 {
                    return Err(RtError::DivByZero(span));
                }
                int(va, a.span)?
                    .checked_rem(d)
                    .map(Val::Int)
                    .ok_or(RtError::Overflow(span))
            }
            BinOp::Eq => Ok(Val::Int((va == vb) as i64)),
            BinOp::Ne => Ok(Val::Int((va != vb) as i64)),
            BinOp::Lt => Ok(Val::Int((int(va, a.span)? < int(vb, b.span)?) as i64)),
            BinOp::Le => Ok(Val::Int((int(va, a.span)? <= int(vb, b.span)?) as i64)),
            BinOp::Gt => Ok(Val::Int((int(va, a.span)? > int(vb, b.span)?) as i64)),
            BinOp::Ge => Ok(Val::Int((int(va, a.span)? >= int(vb, b.span)?) as i64)),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

fn collect_returns(block: &Block, f: &mut impl FnMut(Span)) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Return(_) => f(stmt.span),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect_returns(then_blk, f);
                if let Some(e) = else_blk {
                    collect_returns(e, f);
                }
            }
            StmtKind::While { body, .. } => collect_returns(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::trace::TraceConfig;
    use crate::types::check_program;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn run(src: &str, func: &str, args: &[Val]) -> Result<Option<Val>, RtError> {
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.call(sym(func), args)
    }

    #[test]
    fn arithmetic_and_calls() {
        let out = run(
            "fn fib(n: int) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }",
            "fib",
            &[Val::Int(10)],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(55)));
    }

    #[test]
    fn heap_alloc_and_fields() {
        let out = run(
            "struct Node { next: Node*; data: int; }
             fn build() -> int {
                 var a: Node* = new Node { data: 1 };
                 var b: Node* = new Node { data: 2, next: a };
                 return b->next->data + b->data;
             }",
            "build",
            &[],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(3)));
    }

    #[test]
    fn null_deref_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f(x: Node*) -> Node* { return x->next; }",
            "f",
            &[Val::Nil],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::NullDeref(_)));
    }

    #[test]
    fn use_after_free_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f() -> Node* {
                 var x: Node* = new Node;
                 free(x);
                 return x->next;
             }",
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::UseAfterFree(_)));
    }

    #[test]
    fn double_free_reported() {
        let err = run(
            "struct Node { next: Node*; }
             fn f() {
                 var x: Node* = new Node;
                 free(x);
                 free(x);
             }",
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RtError::InvalidFree(_)));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = parse_program("fn f() { while (true) { } }").unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(
            &p,
            VmConfig {
                max_steps: 10_000,
                max_depth: 64,
            },
        );
        assert_eq!(vm.call(sym("f"), &[]), Err(RtError::StepLimit));
    }

    #[test]
    fn runaway_recursion_hits_depth_limit() {
        let p = parse_program("fn f(n: int) -> int { return f(n); }").unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(
            &p,
            VmConfig {
                max_steps: 1_000_000,
                max_depth: 64,
            },
        );
        assert_eq!(
            vm.call(sym("f"), &[Val::Int(0)]),
            Err(RtError::StackOverflow)
        );
    }

    #[test]
    fn division_by_zero() {
        let err = run("fn f(n: int) -> int { return 1 / n; }", "f", &[Val::Int(0)]).unwrap_err();
        assert!(matches!(err, RtError::DivByZero(_)));
    }

    #[test]
    fn no_return_detected() {
        let err = run(
            "fn f(n: int) -> int { if (n > 0) { return 1; } }",
            "f",
            &[Val::Int(-3)],
        )
        .unwrap_err();
        assert_eq!(err, RtError::NoReturn(sym("f")));
    }

    #[test]
    fn short_circuit_avoids_null_deref() {
        let out = run(
            "struct Node { next: Node*; data: int; }
             fn f(x: Node*) -> bool { return x != null && x->data > 0; }",
            "f",
            &[Val::Nil],
        )
        .unwrap();
        assert_eq!(out, Some(Val::Int(0)));
    }

    fn build_fig2_vm(p: &Program) -> (Vm<'_>, Val, Val) {
        let mut vm = Vm::new(p, VmConfig::default());
        let node = sym("Node");
        // x = [1 <-> 2 <-> 3], y = [4 <-> 5] as in Figure 2.
        let c1 = vm.alloc(node, vec![Val::Nil, Val::Nil]);
        let c2 = vm.alloc(node, vec![Val::Nil, Val::Addr(c1)]);
        let c3 = vm.alloc(node, vec![Val::Nil, Val::Addr(c2)]);
        vm.heap.write(c1, 0, Val::Addr(c2), Span::DUMMY).unwrap();
        vm.heap.write(c2, 0, Val::Addr(c3), Span::DUMMY).unwrap();
        let c4 = vm.alloc(node, vec![Val::Nil, Val::Nil]);
        let c5 = vm.alloc(node, vec![Val::Nil, Val::Addr(c4)]);
        vm.heap.write(c4, 0, Val::Addr(c5), Span::DUMMY).unwrap();
        (vm, Val::Addr(c1), Val::Addr(c4))
    }

    const CONCAT: &str = "
        struct Node { next: Node*; prev: Node*; }
        fn concat(x: Node*, y: Node*) -> Node* {
            @L1;
            if (x == null) { @L2; return y; }
            else {
                var tmp: Node* = concat(x->next, y);
                x->next = tmp;
                if (tmp != null) { tmp->prev = x; }
                @L3;
                return x;
            }
        }";

    #[test]
    fn tracer_collects_concat_snapshots() {
        let p = parse_program(CONCAT).unwrap();
        check_program(&p).unwrap();
        let (mut vm, x, y) = build_fig2_vm(&p);
        vm.set_tracer(Tracer::new(sym("concat"), TraceConfig::default()));
        let out = vm.call(sym("concat"), &[x, y]).unwrap();
        assert_eq!(out, Some(x));
        let tracer = vm.take_tracer().unwrap();
        // 4 activations: L1 ×4, L2 ×1 (x == null at depth 3), L3 ×3.
        assert_eq!(tracer.at(Location::Label(sym("L1"))).len(), 4);
        assert_eq!(tracer.at(Location::Label(sym("L2"))).len(), 1);
        assert_eq!(tracer.at(Location::Label(sym("L3"))).len(), 3);
        assert_eq!(tracer.at(Location::Entry).len(), 4);
        // Exit snapshots carry res.
        let exits = tracer.at(Location::Exit(1));
        assert_eq!(exits.len(), 3);
        for snap in &exits {
            assert!(snap.model.stack.get(sym("res")).is_some());
        }
        // Every L3 snapshot sees the whole 5-cell heap (Figure 2b: the
        // debugger walks all frames, so h1 = h2 = h3).
        for snap in tracer.at(Location::Label(sym("L3"))) {
            assert_eq!(snap.model.heap.len(), 5, "all-frames view at L3");
        }
        // tmp is in scope at L3 but not at L2.
        let l3 = tracer.at(Location::Label(sym("L3")));
        assert!(l3[0].model.stack.get(sym("tmp")).is_some());
        let l2 = tracer.at(Location::Label(sym("L2")));
        assert!(l2[0].model.stack.get(sym("tmp")).is_none());
        // The innermost L2 (activation 4) still sees the outer cells.
        assert_eq!(
            l2[0].model.heap.len(),
            5,
            "backtrace view includes outer frames"
        );
        // Activations pair entries and exits.
        assert_eq!(tracer.at(Location::Entry)[0].activation, 1);
        assert_eq!(tracer.at(Location::Exit(1))[0].activation, 3);
        assert_eq!(tracer.at(Location::Exit(0))[0].activation, 4);
    }

    #[test]
    fn loop_head_snapshots() {
        let src = "
            struct Node { next: Node*; }
            fn len(x: Node*) -> int {
                var n: int = 0;
                while @inv (x != null) { n = n + 1; x = x->next; }
                return n;
            }";
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let node = sym("Node");
        let c2 = vm.alloc(node, vec![Val::Nil]);
        let c1 = vm.alloc(node, vec![Val::Addr(c2)]);
        vm.set_tracer(Tracer::new(sym("len"), TraceConfig::default()));
        let out = vm.call(sym("len"), &[Val::Addr(c1)]).unwrap();
        assert_eq!(out, Some(Val::Int(2)));
        let tracer = vm.take_tracer().unwrap();
        // Head hit 3 times: before iterations 1, 2 and the failing check.
        assert_eq!(tracer.at(Location::LoopHead(sym("inv"))).len(), 3);
        // The original argument stays visible even after x walks past it.
        let heads = tracer.at(Location::LoopHead(sym("inv")));
        assert_eq!(
            heads[2].model.heap.len(),
            2,
            "entry roots keep the list visible"
        );
    }

    #[test]
    fn freed_cells_taint_snapshots() {
        let src = "
            struct Node { next: Node*; }
            fn f(x: Node*) -> Node* {
                free(x->next);
                @after;
                return x;
            }";
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let node = sym("Node");
        let c2 = vm.alloc(node, vec![Val::Nil]);
        let c1 = vm.alloc(node, vec![Val::Addr(c2)]);
        vm.set_tracer(Tracer::new(sym("f"), TraceConfig::default()));
        vm.call(sym("f"), &[Val::Addr(c1)]).unwrap();
        let tracer = vm.take_tracer().unwrap();
        let after = tracer.at(Location::Label(sym("after")));
        assert!(after[0].tainted, "dangling x->next must taint the snapshot");
        assert_eq!(
            after[0].model.heap.len(),
            2,
            "LLDB-style view still sees the freed cell"
        );
    }
}
