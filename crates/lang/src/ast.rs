//! Abstract syntax of MiniC.
//!
//! MiniC is the C-like substrate the benchmark corpus is written in (see
//! DESIGN.md: it replaces the C programs + LLDB of the paper). It has
//! structures with pointer and integer fields, heap allocation and `free`,
//! lexically scoped locals, conditionals, labelled loops, recursion, and
//! breakpoint labels `@name;` at which the tracer snapshots stack-heap
//! models.

use sling_logic::{Span, Symbol};

/// A type expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TyExpr {
    /// Machine integer.
    Int,
    /// Boolean (conditions and flags).
    Bool,
    /// Pointer to a named structure.
    Ptr(Symbol),
    /// No value (function returns only).
    Void,
}

impl std::fmt::Display for TyExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TyExpr::Int => f.write_str("int"),
            TyExpr::Bool => f.write_str("bool"),
            TyExpr::Ptr(s) => write!(f, "{s}*"),
            TyExpr::Void => f.write_str("void"),
        }
    }
}

/// A structure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Structure name.
    pub name: Symbol,
    /// Fields in declaration order.
    pub fields: Vec<(Symbol, TyExpr)>,
    /// Source span of the declaration.
    pub span: Span,
}

/// One function parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Symbol,
    /// Declared type.
    pub ty: TyExpr,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: Symbol,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type (`Void` if none declared).
    pub ret: TyExpr,
    /// Body.
    pub body: Block,
    /// Source span of the header.
    pub span: Span,
}

/// A `{ ... }` block introducing a lexical scope.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Where it is in the source.
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `var x: T;` or `var x: T = e;`
    VarDecl {
        /// Variable name.
        name: Symbol,
        /// Declared type.
        ty: TyExpr,
        /// Optional initializer (default: `null` / `0` / `false`).
        init: Option<Expr>,
    },
    /// `lv = e;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
    },
    /// `if (e) { ... } [else { ... }]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while [@label] (e) { ... }` — the optional label is a loop-head
    /// breakpoint hit before every condition evaluation.
    While {
        /// Loop-head breakpoint name.
        label: Option<Symbol>,
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `return;` or `return e;` — an exit breakpoint with ghost `res`.
    Return(Option<Expr>),
    /// `free(e);`
    Free(Expr),
    /// An expression evaluated for effect (function call).
    ExprStmt(Expr),
    /// `@name;` — a breakpoint label.
    Label(Symbol),
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A variable.
    Var(Symbol),
    /// A field of a pointer expression: `e->f`.
    Field(Expr, Symbol),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// Where it is in the source.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var(Symbol),
    /// Field read `e->f`.
    Field(Box<Expr>, Symbol),
    /// `new T` or `new T { f: e, ... }`; unlisted fields default.
    New(Symbol, Vec<(Symbol, Expr)>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Symbol, Vec<Expr>),
}

/// A whole MiniC program: structures and functions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Structure declarations.
    pub structs: Vec<StructDecl>,
    /// Function declarations.
    pub funcs: Vec<FuncDecl>,
}

impl Program {
    /// Finds a function by name.
    pub fn func(&self, name: Symbol) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a structure by name.
    pub fn strukt(&self, name: Symbol) -> Option<&StructDecl> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Builds the logic-side [`sling_logic::TypeEnv`] for this program's
    /// structures (`bool` fields become `int`).
    ///
    /// # Panics
    ///
    /// Panics on duplicate structures; run the type checker first.
    pub fn type_env(&self) -> sling_logic::TypeEnv {
        let mut env = sling_logic::TypeEnv::new();
        for s in &self.structs {
            let fields = s
                .fields
                .iter()
                .map(|(name, ty)| sling_logic::FieldDef {
                    name: *name,
                    ty: match ty {
                        TyExpr::Ptr(t) => sling_logic::FieldTy::Ptr(*t),
                        _ => sling_logic::FieldTy::Int,
                    },
                })
                .collect();
            env.define(sling_logic::StructDef {
                name: s.name,
                fields,
            })
            .expect("duplicate struct; type checker should have rejected");
        }
        env
    }

    /// All breakpoint locations of a function, in source order: `entry`,
    /// labels and loop heads, and one `exit#i` per `return`.
    pub fn locations_of(&self, func: Symbol) -> Vec<crate::trace::Location> {
        use crate::trace::Location;
        let Some(f) = self.func(func) else {
            return Vec::new();
        };
        let mut out = vec![Location::Entry];
        let mut returns = 0usize;
        fn walk(block: &Block, out: &mut Vec<crate::trace::Location>, returns: &mut usize) {
            use crate::trace::Location;
            for stmt in &block.stmts {
                match &stmt.kind {
                    StmtKind::Label(l) => out.push(Location::Label(*l)),
                    StmtKind::While { label, body, .. } => {
                        if let Some(l) = label {
                            out.push(Location::LoopHead(*l));
                        }
                        walk(body, out, returns);
                    }
                    StmtKind::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, out, returns);
                        if let Some(e) = else_blk {
                            walk(e, out, returns);
                        }
                    }
                    StmtKind::Return(_) => {
                        out.push(Location::Exit(*returns));
                        *returns += 1;
                    }
                    _ => {}
                }
            }
        }
        walk(&f.body, &mut out, &mut returns);
        out
    }
}
