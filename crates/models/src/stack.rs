//! Stack models: variable environments at a snapshot.

use std::collections::BTreeMap;
use std::fmt;

use sling_logic::Symbol;

use crate::value::Val;

/// A stack model `s : Var → Val` — the values of the in-scope variables at
/// one program point, plus the ghost variable `res` at function exits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Stack {
    vars: BTreeMap<Symbol, Val>,
}

impl Stack {
    /// An empty stack.
    pub fn new() -> Stack {
        Stack::default()
    }

    /// Binds `var` to `val`, returning any previous value.
    pub fn bind(&mut self, var: Symbol, val: Val) -> Option<Val> {
        self.vars.insert(var, val)
    }

    /// The value of `var`, if bound.
    pub fn get(&self, var: Symbol) -> Option<Val> {
        self.vars.get(&var).copied()
    }

    /// Iterates over `(variable, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Val)> + '_ {
        self.vars.iter().map(|(s, v)| (*s, *v))
    }

    /// The bound variables, in name order.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.vars.keys().copied()
    }

    /// All variables whose value equals `val` (aliases).
    pub fn aliases_of(&self, val: Val) -> Vec<Symbol> {
        self.iter()
            .filter(|(_, v)| *v == val)
            .map(|(s, _)| s)
            .collect()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl FromIterator<(Symbol, Val)> for Stack {
    fn from_iter<T: IntoIterator<Item = (Symbol, Val)>>(iter: T) -> Stack {
        Stack {
            vars: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (s, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s} = {v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Loc;

    #[test]
    fn bind_and_get() {
        let mut s = Stack::new();
        let x = Symbol::intern("x");
        s.bind(x, Val::Int(3));
        assert_eq!(s.get(x), Some(Val::Int(3)));
        assert_eq!(s.bind(x, Val::Nil), Some(Val::Int(3)));
        assert_eq!(s.get(x), Some(Val::Nil));
    }

    #[test]
    fn aliases() {
        let mut s = Stack::new();
        let a = Val::Addr(Loc::new(9));
        s.bind(Symbol::intern("x"), a);
        s.bind(Symbol::intern("y"), a);
        s.bind(Symbol::intern("z"), Val::Nil);
        let names: Vec<_> = s.aliases_of(a).iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn display() {
        let mut s = Stack::new();
        s.bind(Symbol::intern("x"), Val::Int(1));
        assert_eq!(s.to_string(), "{x = 1}");
    }
}
