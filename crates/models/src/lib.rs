//! Concrete stack-heap models — the semantic domain of the SLING pipeline.
//!
//! A *stack-heap model* (§3 of the paper) is a pair `(s, h)` of a stack
//! `s : Var → Val` and a finite heap `h : Loc ⇀ (Type × Val*)`. The MiniC
//! tracer produces these as snapshots; the model checker consumes them; the
//! SLING algorithm partitions and recombines them.
//!
//! # Example
//!
//! Build the heap of the paper's Figure 2(a) — two doubly linked lists —
//! and compute what is reachable from `x`:
//!
//! ```
//! use sling_logic::Symbol;
//! use sling_models::{reachable, Heap, HeapCell, Loc, Stack, Val};
//!
//! let node = Symbol::intern("Node");
//! let mut h = Heap::new();
//! let cell = |next: Val, prev: Val| HeapCell::new(node, vec![next, prev]);
//! h.insert(Loc::new(1), cell(Val::Addr(Loc::new(2)), Val::Nil));
//! h.insert(Loc::new(2), cell(Val::Addr(Loc::new(3)), Val::Addr(Loc::new(1))));
//! h.insert(Loc::new(3), cell(Val::Nil, Val::Addr(Loc::new(2))));
//! h.insert(Loc::new(4), cell(Val::Addr(Loc::new(5)), Val::Nil));
//! h.insert(Loc::new(5), cell(Val::Nil, Val::Addr(Loc::new(4))));
//!
//! let from_x = reachable(&h, [Val::Addr(Loc::new(1))]);
//! assert_eq!(from_x.len(), 3);
//! ```

#![warn(missing_docs)]

mod heap;
mod model;
mod reach;
mod stack;
mod value;

pub use heap::{Heap, HeapCell, OverlapError};
pub use model::{ModelSeq, StackHeapModel};
pub use reach::{reachable, traverse, Traversal};
pub use stack::Stack;
pub use value::{Loc, Val};
