//! Reachability over heap models.
//!
//! These are the graph primitives behind SLING's `SplitHeap` (§4.1): a
//! depth-first traversal from a root pointer that stops at designated
//! locations (cells other stack variables point to) and records what it ran
//! into — stop locations, `nil`, and dangling addresses.

use std::collections::BTreeSet;

use crate::heap::Heap;
use crate::value::{Loc, Val};

/// Everything a bounded traversal observed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Traversal {
    /// Locations included in the sub-heap (reached, allocated, not stopped).
    pub cells: BTreeSet<Loc>,
    /// Stop locations that the traversal touched (they are *not* in
    /// `cells`).
    pub hit_stops: BTreeSet<Loc>,
    /// True if a `nil` pointer was encountered in a traversed field or as
    /// the root.
    pub saw_nil: bool,
    /// Addresses referenced but not allocated in the heap (dangling).
    pub dangling: BTreeSet<Loc>,
}

/// Depth-first traversal from `root`, stopping at `stops`.
///
/// Starting from the value `root` (a pointer), follows every address-valued
/// field of every visited cell. A location in `stops` is recorded in
/// [`Traversal::hit_stops`] and not expanded nor included. Unallocated
/// addresses are recorded as dangling.
///
/// The root itself, if it is in `stops`, yields an empty traversal with the
/// root as a hit stop — the caller (SplitHeap) treats the variable's
/// sub-heap as empty in that case.
///
/// # Examples
///
/// ```
/// use sling_logic::Symbol;
/// use sling_models::{traverse, Heap, HeapCell, Loc, Val};
///
/// // 1 -> 2 -> nil
/// let n = Symbol::intern("N");
/// let mut h = Heap::new();
/// h.insert(Loc::new(1), HeapCell::new(n, vec![Val::Addr(Loc::new(2))]));
/// h.insert(Loc::new(2), HeapCell::new(n, vec![Val::Nil]));
/// let t = traverse(&h, Val::Addr(Loc::new(1)), &Default::default());
/// assert_eq!(t.cells.len(), 2);
/// assert!(t.saw_nil);
/// ```
pub fn traverse(heap: &Heap, root: Val, stops: &BTreeSet<Loc>) -> Traversal {
    let mut t = Traversal::default();
    let mut work: Vec<Val> = vec![root];
    let mut visited: BTreeSet<Loc> = BTreeSet::new();
    while let Some(v) = work.pop() {
        match v {
            Val::Nil => t.saw_nil = true,
            Val::Int(_) => {}
            Val::Addr(loc) => {
                if visited.contains(&loc) {
                    continue;
                }
                if stops.contains(&loc) {
                    t.hit_stops.insert(loc);
                    continue;
                }
                visited.insert(loc);
                match heap.get(loc) {
                    None => {
                        t.dangling.insert(loc);
                    }
                    Some(cell) => {
                        t.cells.insert(loc);
                        // Push in reverse field order so the DFS visits
                        // fields left to right (deterministic).
                        for v in cell.fields.iter().rev() {
                            if v.is_pointer() {
                                work.push(*v);
                            }
                        }
                    }
                }
            }
        }
    }
    t
}

/// All locations reachable from the given root values (no stops).
pub fn reachable(heap: &Heap, roots: impl IntoIterator<Item = Val>) -> BTreeSet<Loc> {
    let mut out = BTreeSet::new();
    for r in roots {
        out.extend(traverse(heap, r, &BTreeSet::new()).cells);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapCell;
    use sling_logic::Symbol;

    fn n() -> Symbol {
        Symbol::intern("N")
    }

    fn l(x: u64) -> Loc {
        Loc::new(x)
    }

    /// 1 -> 2 -> 3 -> nil, plus isolated 9.
    fn chain() -> Heap {
        let mut h = Heap::new();
        h.insert(l(1), HeapCell::new(n(), vec![Val::Addr(l(2))]));
        h.insert(l(2), HeapCell::new(n(), vec![Val::Addr(l(3))]));
        h.insert(l(3), HeapCell::new(n(), vec![Val::Nil]));
        h.insert(l(9), HeapCell::new(n(), vec![Val::Nil]));
        h
    }

    #[test]
    fn traverses_whole_chain() {
        let t = traverse(&chain(), Val::Addr(l(1)), &BTreeSet::new());
        assert_eq!(t.cells, [l(1), l(2), l(3)].into_iter().collect());
        assert!(t.saw_nil);
        assert!(t.hit_stops.is_empty());
        assert!(t.dangling.is_empty());
    }

    #[test]
    fn stops_cut_traversal() {
        let stops = [l(3)].into_iter().collect();
        let t = traverse(&chain(), Val::Addr(l(1)), &stops);
        assert_eq!(t.cells, [l(1), l(2)].into_iter().collect());
        assert_eq!(t.hit_stops, [l(3)].into_iter().collect());
        assert!(!t.saw_nil); // nil is beyond the stop
    }

    #[test]
    fn root_is_stop() {
        let stops = [l(1)].into_iter().collect();
        let t = traverse(&chain(), Val::Addr(l(1)), &stops);
        assert!(t.cells.is_empty());
        assert_eq!(t.hit_stops, [l(1)].into_iter().collect());
    }

    #[test]
    fn nil_root() {
        let t = traverse(&chain(), Val::Nil, &BTreeSet::new());
        assert!(t.cells.is_empty());
        assert!(t.saw_nil);
    }

    #[test]
    fn dangling_detected() {
        let mut h = Heap::new();
        h.insert(l(1), HeapCell::new(n(), vec![Val::Addr(l(42))]));
        let t = traverse(&h, Val::Addr(l(1)), &BTreeSet::new());
        assert_eq!(t.dangling, [l(42)].into_iter().collect());
    }

    #[test]
    fn cycles_terminate() {
        let mut h = Heap::new();
        h.insert(l(1), HeapCell::new(n(), vec![Val::Addr(l(2))]));
        h.insert(l(2), HeapCell::new(n(), vec![Val::Addr(l(1))]));
        let t = traverse(&h, Val::Addr(l(1)), &BTreeSet::new());
        assert_eq!(t.cells.len(), 2);
        assert!(!t.saw_nil);
    }

    #[test]
    fn reachable_multi_root() {
        let r = reachable(&chain(), [Val::Addr(l(2)), Val::Addr(l(9))]);
        assert_eq!(r, [l(2), l(3), l(9)].into_iter().collect());
    }
}
