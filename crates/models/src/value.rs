//! Runtime values and heap locations.

use std::fmt;

/// A heap address.
///
/// Locations are opaque nonzero integers; `nil` is *not* a location (it is
/// [`Val::Nil`]), matching the paper's treatment of `nil` as a constant
/// denoting a dangling address outside `Loc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(u64);

impl Loc {
    /// Creates a location from a raw nonzero address.
    ///
    /// # Panics
    ///
    /// Panics if `raw == 0`; address 0 is reserved for `nil`.
    pub fn new(raw: u64) -> Loc {
        assert_ne!(raw, 0, "Loc 0 is reserved for nil");
        Loc(raw)
    }

    /// The raw address.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

/// A runtime value: an integer, an address, or `nil`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    /// The null pointer.
    Nil,
    /// A heap address.
    Addr(Loc),
    /// A machine integer.
    Int(i64),
}

impl Val {
    /// The address, if this is an address value.
    pub fn as_addr(self) -> Option<Loc> {
        match self {
            Val::Addr(l) => Some(l),
            _ => None,
        }
    }

    /// The integer, if this is an integer value.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(k) => Some(k),
            _ => None,
        }
    }

    /// True for `nil` and addresses (i.e., pointer-typed values).
    pub fn is_pointer(self) -> bool {
        matches!(self, Val::Nil | Val::Addr(_))
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Nil => f.write_str("nil"),
            Val::Addr(l) => write!(f, "{l}"),
            Val::Int(k) => write!(f, "{k}"),
        }
    }
}

impl From<Loc> for Val {
    fn from(l: Loc) -> Val {
        Val::Addr(l)
    }
}

impl From<i64> for Val {
    fn from(k: i64) -> Val {
        Val::Int(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "reserved")]
    fn loc_zero_panics() {
        let _ = Loc::new(0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Loc::new(1).to_string(), "0x01");
        assert_eq!(Loc::new(255).to_string(), "0xff");
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::Addr(Loc::new(3)).as_addr(), Some(Loc::new(3)));
        assert_eq!(Val::Int(7).as_int(), Some(7));
        assert_eq!(Val::Nil.as_addr(), None);
        assert!(Val::Nil.is_pointer());
        assert!(!Val::Int(0).is_pointer());
    }
}
