//! Stack-heap models and sequences of them.
//!
//! A *stack-heap model* `(s, h)` is the paper's notion of a concrete trace
//! at a location (§3, Semantics). SLING operates on *sequences* of models
//! (one per test execution reaching the location) with pointwise heap union
//! `⊕` and difference `\` (§3).

use std::fmt;

use crate::heap::{Heap, OverlapError};
use crate::stack::Stack;

/// One concrete trace: a stack model paired with a heap model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StackHeapModel {
    /// The stack `s`.
    pub stack: Stack,
    /// The heap `h`.
    pub heap: Heap,
}

impl StackHeapModel {
    /// Creates a model from its parts.
    pub fn new(stack: Stack, heap: Heap) -> StackHeapModel {
        StackHeapModel { stack, heap }
    }
}

impl fmt::Display for StackHeapModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.stack, self.heap)
    }
}

/// A sequence of stack-heap models `(sᵢ, hᵢ)ⁿᵢ₌₁` collected at one location.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelSeq {
    /// The models, in collection order.
    pub models: Vec<StackHeapModel>,
}

impl ModelSeq {
    /// An empty sequence.
    pub fn new() -> ModelSeq {
        ModelSeq::default()
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True if there are no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over the models.
    pub fn iter(&self) -> impl Iterator<Item = &StackHeapModel> {
        self.models.iter()
    }

    /// Pointwise heap union `(sᵢ,hᵢ) ⊕ (sᵢ,h'ᵢ) = (sᵢ, hᵢ ∘ h'ᵢ)`.
    ///
    /// The stacks of `other` are ignored (the paper's operator requires the
    /// same stacks; callers pair sequences originating from the same
    /// snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if any pair of heaps overlaps.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    pub fn heap_union(&self, other: &ModelSeq) -> Result<ModelSeq, OverlapError> {
        assert_eq!(self.len(), other.len(), "⊕ needs sequences of equal length");
        let mut out = Vec::with_capacity(self.len());
        for (a, b) in self.models.iter().zip(&other.models) {
            out.push(StackHeapModel::new(a.stack.clone(), a.heap.union(&b.heap)?));
        }
        Ok(ModelSeq { models: out })
    }

    /// Pointwise heap difference `(sᵢ,hᵢ) \ (sᵢ,h'ᵢ) = (sᵢ, hᵢ \ h'ᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    pub fn heap_difference(&self, other: &ModelSeq) -> ModelSeq {
        assert_eq!(
            self.len(),
            other.len(),
            "\\ needs sequences of equal length"
        );
        ModelSeq {
            models: self
                .models
                .iter()
                .zip(&other.models)
                .map(|(a, b)| StackHeapModel::new(a.stack.clone(), a.heap.difference(&b.heap)))
                .collect(),
        }
    }
}

impl FromIterator<StackHeapModel> for ModelSeq {
    fn from_iter<T: IntoIterator<Item = StackHeapModel>>(iter: T) -> ModelSeq {
        ModelSeq {
            models: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for ModelSeq {
    type Item = StackHeapModel;
    type IntoIter = std::vec::IntoIter<StackHeapModel>;

    fn into_iter(self) -> Self::IntoIter {
        self.models.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapCell;
    use crate::value::{Loc, Val};
    use sling_logic::Symbol;

    fn model(locs: &[u64]) -> StackHeapModel {
        let mut h = Heap::new();
        for &n in locs {
            h.insert(
                Loc::new(n),
                HeapCell::new(Symbol::intern("N"), vec![Val::Nil]),
            );
        }
        StackHeapModel::new(Stack::new(), h)
    }

    #[test]
    fn union_and_difference_are_pointwise() {
        let a: ModelSeq = vec![model(&[1]), model(&[2])].into_iter().collect();
        let b: ModelSeq = vec![model(&[3]), model(&[4])].into_iter().collect();
        let u = a.heap_union(&b).unwrap();
        assert_eq!(u.models[0].heap.len(), 2);
        let d = u.heap_difference(&b);
        assert_eq!(d.models[0].heap.domain(), model(&[1]).heap.domain());
        assert_eq!(d.models[1].heap.domain(), model(&[2]).heap.domain());
    }

    #[test]
    fn union_detects_overlap() {
        let a: ModelSeq = vec![model(&[1])].into_iter().collect();
        let b: ModelSeq = vec![model(&[1])].into_iter().collect();
        assert!(a.heap_union(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn union_length_mismatch_panics() {
        let a: ModelSeq = vec![model(&[1])].into_iter().collect();
        let b = ModelSeq::new();
        let _ = a.heap_union(&b);
    }
}
