//! Heap models: finite partial maps from locations to typed cells.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sling_logic::Symbol;

use crate::value::{Loc, Val};

/// One allocated cell: an instance of a structure type.
///
/// Field values are stored positionally, in the structure's declaration
/// order (the [`sling_logic::TypeEnv`] gives names to positions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeapCell {
    /// Structure type name `τ`.
    pub ty: Symbol,
    /// Field values in declaration order.
    pub fields: Vec<Val>,
}

impl HeapCell {
    /// Creates a cell of the given type with the given field values.
    pub fn new(ty: Symbol, fields: Vec<Val>) -> HeapCell {
        HeapCell { ty, fields }
    }

    /// The addresses stored in this cell's fields.
    pub fn out_edges(&self) -> impl Iterator<Item = Loc> + '_ {
        self.fields.iter().filter_map(|v| v.as_addr())
    }
}

impl fmt::Display for HeapCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.ty)?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("}")
    }
}

/// Error from [`Heap::union`] when the operands overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    /// A location present in both heaps.
    pub loc: Loc,
}

impl fmt::Display for OverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heaps overlap at {}", self.loc)
    }
}

impl std::error::Error for OverlapError {}

/// A heap model `h : Loc ⇀ (Type × Val*)`.
///
/// Deterministic iteration order (sorted by location) keeps the whole
/// pipeline reproducible.
///
/// # Examples
///
/// ```
/// use sling_logic::Symbol;
/// use sling_models::{Heap, HeapCell, Loc, Val};
///
/// let node = Symbol::intern("Node");
/// let mut h = Heap::new();
/// let a = Loc::new(1);
/// h.insert(a, HeapCell::new(node, vec![Val::Nil]));
/// assert_eq!(h.len(), 1);
/// assert!(h.get(a).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Heap {
    cells: BTreeMap<Loc, HeapCell>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Inserts (or replaces) the cell at `loc`, returning the old cell.
    pub fn insert(&mut self, loc: Loc, cell: HeapCell) -> Option<HeapCell> {
        self.cells.insert(loc, cell)
    }

    /// Removes and returns the cell at `loc`.
    pub fn remove(&mut self, loc: Loc) -> Option<HeapCell> {
        self.cells.remove(&loc)
    }

    /// The cell at `loc`, if allocated.
    pub fn get(&self, loc: Loc) -> Option<&HeapCell> {
        self.cells.get(&loc)
    }

    /// Mutable access to the cell at `loc`.
    pub fn get_mut(&mut self, loc: Loc) -> Option<&mut HeapCell> {
        self.cells.get_mut(&loc)
    }

    /// True if `loc` is allocated.
    pub fn contains(&self, loc: Loc) -> bool {
        self.cells.contains_key(&loc)
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells are allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The domain `dom(h)`.
    pub fn domain(&self) -> BTreeSet<Loc> {
        self.cells.keys().copied().collect()
    }

    /// Iterates over `(location, cell)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &HeapCell)> {
        self.cells.iter().map(|(l, c)| (*l, c))
    }

    /// True if `self` and `other` have disjoint domains (`h1 # h2`).
    pub fn disjoint(&self, other: &Heap) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.cells.keys().all(|l| !large.contains(*l))
    }

    /// Disjoint union `h1 ∘ h2`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if the domains overlap.
    pub fn union(&self, other: &Heap) -> Result<Heap, OverlapError> {
        let mut out = self.clone();
        for (l, c) in other.iter() {
            if out.insert(l, c.clone()).is_some() {
                return Err(OverlapError { loc: l });
            }
        }
        Ok(out)
    }

    /// Heap difference `h1 \ h2`: the cells of `self` whose locations are
    /// not in `other`.
    pub fn difference(&self, other: &Heap) -> Heap {
        Heap {
            cells: self
                .cells
                .iter()
                .filter(|(l, _)| !other.contains(**l))
                .map(|(l, c)| (*l, c.clone()))
                .collect(),
        }
    }

    /// The sub-heap of `self` restricted to `locs`.
    pub fn restrict(&self, locs: &BTreeSet<Loc>) -> Heap {
        Heap {
            cells: self
                .cells
                .iter()
                .filter(|(l, _)| locs.contains(l))
                .map(|(l, c)| (*l, c.clone()))
                .collect(),
        }
    }

    /// True if every cell of `self` is also (identically) in `other`
    /// (`h' ⊆ h` of Definition 2).
    pub fn subheap_of(&self, other: &Heap) -> bool {
        self.cells.iter().all(|(l, c)| other.get(*l) == Some(c))
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (l, c)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{l} -> {c}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<(Loc, HeapCell)> for Heap {
    fn from_iter<T: IntoIterator<Item = (Loc, HeapCell)>>(iter: T) -> Heap {
        Heap {
            cells: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Loc, HeapCell)> for Heap {
    fn extend<T: IntoIterator<Item = (Loc, HeapCell)>>(&mut self, iter: T) {
        self.cells.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Symbol {
        Symbol::intern("Node")
    }

    fn cell(next: Val) -> HeapCell {
        HeapCell::new(node(), vec![next])
    }

    fn l(n: u64) -> Loc {
        Loc::new(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut h = Heap::new();
        assert!(h.insert(l(1), cell(Val::Nil)).is_none());
        assert_eq!(h.get(l(1)).unwrap().fields[0], Val::Nil);
        assert!(h.remove(l(1)).is_some());
        assert!(h.is_empty());
    }

    #[test]
    fn union_disjoint() {
        let mut a = Heap::new();
        a.insert(l(1), cell(Val::Addr(l(2))));
        let mut b = Heap::new();
        b.insert(l(2), cell(Val::Nil));
        assert!(a.disjoint(&b));
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn union_overlap_errors() {
        let mut a = Heap::new();
        a.insert(l(1), cell(Val::Nil));
        let mut b = Heap::new();
        b.insert(l(1), cell(Val::Nil));
        assert!(!a.disjoint(&b));
        assert_eq!(a.union(&b).unwrap_err().loc, l(1));
    }

    #[test]
    fn difference_and_restrict() {
        let mut a = Heap::new();
        a.insert(l(1), cell(Val::Nil));
        a.insert(l(2), cell(Val::Nil));
        a.insert(l(3), cell(Val::Nil));
        let mut b = Heap::new();
        b.insert(l(2), cell(Val::Nil));
        let d = a.difference(&b);
        assert_eq!(d.domain(), [l(1), l(3)].into_iter().collect());
        let r = a.restrict(&[l(3)].into_iter().collect());
        assert_eq!(r.domain(), [l(3)].into_iter().collect());
    }

    #[test]
    fn subheap_requires_identical_cells() {
        let mut a = Heap::new();
        a.insert(l(1), cell(Val::Nil));
        let mut b = Heap::new();
        b.insert(l(1), cell(Val::Nil));
        b.insert(l(2), cell(Val::Nil));
        assert!(a.subheap_of(&b));
        assert!(!b.subheap_of(&a));
        // Same domain, different contents: not a subheap.
        let mut c = Heap::new();
        c.insert(l(1), cell(Val::Addr(l(2))));
        assert!(!c.subheap_of(&b));
    }

    #[test]
    fn out_edges() {
        let c = HeapCell::new(node(), vec![Val::Addr(l(7)), Val::Int(3), Val::Nil]);
        assert_eq!(c.out_edges().collect::<Vec<_>>(), vec![l(7)]);
    }
}
