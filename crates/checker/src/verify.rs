//! Static verification of candidate invariants by bounded countermodel
//! search.
//!
//! Dynamic inference emits formulas that hold on every *sampled* model;
//! this module re-examines each candidate against models the sampler never
//! produced. The built-in [`UnfoldProver`] enumerates concrete stack-heap
//! models of the *sibling* candidates at the same location — the reduct of
//! bounded unfold/fold of the `PredEnv` definitions plus pure-constraint
//! concretization — and model-checks the candidate on each:
//!
//! * a model of a sibling that falsifies the candidate is a countermodel:
//!   the candidate over-fits the sampled traces relative to its siblings
//!   and is graded [`Verdict::Refuted`] with the witness attached;
//! * if every enumerated model satisfies the candidate (and at least one
//!   model was available) the candidate is [`Verdict::Verified`] —
//!   consistent with all bounded evidence derivable from its siblings;
//! * with no usable sibling (none covers the candidate's variables, or
//!   enumeration exhausts its fuel before producing a model) the verdict
//!   is an honest [`Verdict::Unknown`].
//!
//! Every enumerated model is sanity-checked against the sibling it came
//! from with the concrete model checker ([`CheckCtx::holds_exact`]) before
//! use, so a refutation is always a *checker-certified* countermodel: the
//! witness provably satisfies a sibling invariant and provably falsifies
//! the candidate. Soundness is therefore relative to the model checker,
//! never to the concretization heuristics.
//!
//! The [`Prover`] trait keeps the engine generic over the proof backend so
//! an SMT-based entailment prover (Reynolds et al., CAV'16) can slot in
//! behind the same verdict interface later.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use sling_logic::{Expr, FieldTy, PureAtom, SpatialAtom, SymHeap, Symbol};
use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};

use crate::check::CheckCtx;

/// Budget knobs for the unfolding prover. All bounds are per
/// [`Prover::prove`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Total expansion steps (predicate unfoldings) across the whole
    /// enumeration for one reference formula.
    pub fuel: u32,
    /// Maximum predicate unfoldings along any single model's derivation —
    /// bounds the size of enumerated heaps (a list model gets at most
    /// `max_depth` nodes per segment).
    pub max_depth: u32,
    /// Maximum concrete models materialized per reference formula.
    pub max_models: usize,
    /// Maximum sibling references consulted per obligation.
    pub max_references: usize,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            fuel: 256,
            max_depth: 4,
            max_models: 24,
            max_references: 8,
        }
    }
}

/// One proof obligation: a candidate invariant and the sibling invariants
/// inferred at the same location (the reference evidence).
#[derive(Debug, Clone)]
pub struct Obligation<'a> {
    /// The formula to verify.
    pub candidate: &'a SymHeap,
    /// The other candidates at the same location, assumed true of the
    /// states the candidate describes. The prover ignores references that
    /// do not cover the candidate's free variables.
    pub references: &'a [SymHeap],
}

/// The prover's answer for one obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every enumerated model of every usable reference satisfies the
    /// candidate (and at least one model was enumerated).
    Verified,
    /// A checker-certified countermodel: `witness` satisfies some sibling
    /// invariant but falsifies the candidate.
    Refuted {
        /// The concrete stack-heap countermodel.
        witness: StackHeapModel,
    },
    /// No verdict within budget.
    Unknown {
        /// Human-readable explanation (no covering sibling, fuel
        /// exhausted, ...).
        reason: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// True for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => f.write_str("verified"),
            Verdict::Refuted { .. } => f.write_str("refuted"),
            Verdict::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// A verification backend: turns one [`Obligation`] into a [`Verdict`].
///
/// Implementations must be deterministic — the engine asserts that
/// verification never perturbs inference output, and CI replays graded
/// runs.
pub trait Prover {
    /// Short backend name for logs and metrics (e.g. `"unfold"`).
    fn name(&self) -> &'static str;

    /// Proves or refutes `obligation` under `ctx`'s type and predicate
    /// environments.
    fn prove(&self, ctx: &CheckCtx<'_>, obligation: &Obligation<'_>) -> Verdict;
}

/// The built-in prover: bounded unfolding of reference formulas into
/// concrete models, each certified by the model checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnfoldProver {
    /// Enumeration budgets.
    pub config: VerifyConfig,
}

impl UnfoldProver {
    /// A prover with the given budgets.
    pub fn new(config: VerifyConfig) -> UnfoldProver {
        UnfoldProver { config }
    }
}

impl Prover for UnfoldProver {
    fn name(&self) -> &'static str {
        "unfold"
    }

    fn prove(&self, ctx: &CheckCtx<'_>, obligation: &Obligation<'_>) -> Verdict {
        let candidate = obligation.candidate;
        let needed = candidate.free_vars();
        let mut usable = 0usize;
        let mut models_checked = 0usize;
        for reference in obligation
            .references
            .iter()
            .filter(|r| {
                if *r == candidate {
                    return false;
                }
                let scope = r.free_vars();
                needed.iter().all(|v| scope.contains(v))
            })
            .take(self.config.max_references)
        {
            usable += 1;
            for model in enumerate_models(ctx, reference, self.config) {
                // Certify the model against the reference it came from;
                // concretization is heuristic, the checker is the judge.
                if !ctx.holds_exact(&model, reference) {
                    continue;
                }
                models_checked += 1;
                if !ctx.holds_exact(&model, candidate) {
                    return Verdict::Refuted { witness: model };
                }
            }
        }
        if models_checked > 0 {
            Verdict::Verified
        } else if usable == 0 {
            Verdict::Unknown {
                reason: "no sibling invariant covers the candidate's variables".into(),
            }
        } else {
            Verdict::Unknown {
                reason: format!("no model of {usable} sibling reference(s) within budget"),
            }
        }
    }
}

/// One in-flight expansion of a reference formula: points-to atoms already
/// flat, predicate atoms pending unfolding.
#[derive(Debug, Clone)]
struct Branch {
    spatial: Vec<SpatialAtom>,
    pending: VecDeque<SpatialAtom>,
    pure: Vec<PureAtom>,
    unfolds: u32,
}

/// Enumerates concrete models of `reference` by breadth-first bounded
/// unfolding (smallest models first). The result is deterministic: queue
/// order, case order, and location numbering are all fixed by the input.
fn enumerate_models(
    ctx: &CheckCtx<'_>,
    reference: &SymHeap,
    config: VerifyConfig,
) -> Vec<StackHeapModel> {
    let mut queue: VecDeque<Branch> = VecDeque::new();
    let (preds, flats): (Vec<_>, Vec<_>) = reference
        .spatial
        .iter()
        .cloned()
        .partition(|a| matches!(a, SpatialAtom::Pred { .. }));
    queue.push_back(Branch {
        spatial: flats,
        pending: preds.into(),
        pure: reference.pure.clone(),
        unfolds: 0,
    });

    let mut fresh = 0u32;
    let mut fuel = config.fuel;
    let mut models = Vec::new();
    while let Some(mut branch) = queue.pop_front() {
        if models.len() >= config.max_models {
            break;
        }
        let Some(goal) = branch.pending.pop_front() else {
            if let Some(model) = concretize(ctx, reference, &branch) {
                models.push(model);
            }
            continue;
        };
        let SpatialAtom::Pred { name, args } = goal else {
            unreachable!("pending holds predicate atoms only");
        };
        if branch.unfolds >= config.max_depth || fuel == 0 {
            continue; // this derivation is out of budget; drop it
        }
        fuel = fuel.saturating_sub(1);
        let Some(def) = ctx.preds.get(name) else {
            continue;
        };
        if def.arity() != args.len() {
            continue;
        }
        let mut cases = def.unfold(&args);
        // Base cases (fewer spatial atoms) first: smallest models surface
        // earliest, so refutation witnesses stay minimal.
        cases.sort_by_key(|c| c.spatial.len());
        for case in cases {
            let case = freshen(case, &mut fresh);
            let mut next = branch.clone();
            next.unfolds += 1;
            next.pure.extend(case.pure);
            for atom in case.spatial {
                match atom {
                    SpatialAtom::Pred { .. } => next.pending.push_back(atom),
                    flat => next.spatial.push(flat),
                }
            }
            queue.push_back(next);
        }
    }
    models
}

/// Alpha-renames an unfolded case's binders to enumeration-private names.
fn freshen(case: SymHeap, fresh: &mut u32) -> SymHeap {
    if case.exists.is_empty() {
        return case;
    }
    let map: sling_logic::Subst = case
        .exists
        .iter()
        .map(|v| {
            *fresh += 1;
            (*v, Expr::Var(Symbol::intern(&format!("$w{fresh}"))))
        })
        .collect();
    sling_logic::subst_symheap_bound(&case, &map)
}

/// A variable's resolved concrete value during concretization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conc {
    Val(Val),
    /// Equated to another variable (union-find parent pointer).
    Same(Symbol),
}

/// Turns a fully-unfolded branch into a concrete model, or `None` if the
/// branch is visibly inconsistent. Heuristic by design: the caller
/// re-certifies the result with the model checker.
fn concretize(ctx: &CheckCtx<'_>, reference: &SymHeap, branch: &Branch) -> Option<StackHeapModel> {
    let mut vals: BTreeMap<Symbol, Conc> = BTreeMap::new();

    fn find(vals: &BTreeMap<Symbol, Conc>, mut v: Symbol) -> Symbol {
        while let Some(Conc::Same(p)) = vals.get(&v) {
            v = *p;
        }
        v
    }
    fn value_of(vals: &BTreeMap<Symbol, Conc>, v: Symbol) -> Option<Val> {
        match vals.get(&find(vals, v))? {
            Conc::Val(val) => Some(*val),
            Conc::Same(_) => None,
        }
    }

    // 1. Allocate one cell per points-to atom, roots in atom order. A
    //    non-variable root (nil, int, arithmetic) kills the branch.
    let mut roots: Vec<(Symbol, Loc)> = Vec::new();
    for (i, atom) in branch.spatial.iter().enumerate() {
        let SpatialAtom::PointsTo { root, .. } = atom else {
            continue;
        };
        let Expr::Var(v) = root else {
            return None;
        };
        roots.push((*v, Loc::new(i as u64 + 1)));
    }
    for (v, loc) in &roots {
        let rep = find(&vals, *v);
        match vals.get(&rep) {
            Some(Conc::Val(_)) => return None, // two atoms share a root: not separate
            _ => {
                vals.insert(rep, Conc::Val(Val::Addr(*loc)));
            }
        }
    }

    // 2. Fold equalities into the union-find until fixpoint; reject visible
    //    constant conflicts early (the checker would anyway).
    let mut changed = true;
    while changed {
        changed = false;
        for atom in &branch.pure {
            let PureAtom::Eq(a, b) = atom else { continue };
            match (a, b) {
                (Expr::Var(x), Expr::Var(y)) => {
                    let (rx, ry) = (find(&vals, *x), find(&vals, *y));
                    if rx == ry {
                        continue;
                    }
                    match (vals.get(&rx).copied(), vals.get(&ry).copied()) {
                        (Some(Conc::Val(vx)), Some(Conc::Val(vy))) => {
                            if vx != vy {
                                return None;
                            }
                        }
                        (Some(Conc::Val(_)), _) => {
                            vals.insert(ry, Conc::Same(rx));
                            changed = true;
                        }
                        _ => {
                            vals.insert(rx, Conc::Same(ry));
                            changed = true;
                        }
                    }
                }
                (Expr::Var(x), e) | (e, Expr::Var(x)) => {
                    let Some(k) = eval_const(&vals, e) else {
                        continue;
                    };
                    let rx = find(&vals, *x);
                    match vals.get(&rx) {
                        Some(Conc::Val(existing)) => {
                            if *existing != k {
                                return None;
                            }
                        }
                        _ => {
                            vals.insert(rx, Conc::Val(k));
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // 3. Default the still-free variables: pointer-typed field slots become
    //    nil, integer slots take small ascending values (discovery order),
    //    so chains like sorted-list `d <= d'` come out satisfied.
    let mut next_int = 1i64;
    let mut default = |vals: &mut BTreeMap<Symbol, Conc>, v: Symbol, ty: FieldTy| {
        let rep = find(vals, v);
        if let Some(Conc::Val(_)) = vals.get(&rep) {
            return;
        }
        let val = match ty {
            FieldTy::Ptr(_) => Val::Nil,
            FieldTy::Int => {
                next_int += 1;
                Val::Int(next_int)
            }
        };
        vals.insert(rep, Conc::Val(val));
    };
    for atom in &branch.spatial {
        let SpatialAtom::PointsTo { ty, fields, .. } = atom else {
            continue;
        };
        let def = ctx.types.get(*ty)?;
        for fa in fields {
            if let Expr::Var(v) = &fa.value {
                default(&mut vals, *v, def.field_ty(fa.name)?);
            }
        }
    }

    // 4. Materialize the heap: declaration-order field vectors, unset
    //    fields defaulted by declared type.
    let mut heap = Heap::new();
    for (i, atom) in branch.spatial.iter().enumerate() {
        let SpatialAtom::PointsTo { ty, fields, .. } = atom else {
            continue;
        };
        let def = ctx.types.get(*ty)?;
        let mut cell: Vec<Val> = def
            .fields
            .iter()
            .map(|f| match f.ty {
                FieldTy::Ptr(_) => Val::Nil,
                FieldTy::Int => Val::Int(0),
            })
            .collect();
        for fa in fields {
            let idx = def.field_index(fa.name)?;
            cell[idx] = eval_const(&vals, &fa.value)?;
        }
        heap.insert(Loc::new(i as u64 + 1), HeapCell::new(*ty, cell));
    }

    // 5. Bind the reference's free (program) variables on the stack;
    //    anything still unconstrained defaults to nil.
    let mut stack = Stack::new();
    for v in reference.free_vars() {
        stack.bind(v, value_of(&vals, v).unwrap_or(Val::Nil));
    }
    Some(StackHeapModel::new(stack, heap))
}

/// Evaluates an expression over resolved variables to a concrete value.
fn eval_const(vals: &BTreeMap<Symbol, Conc>, e: &Expr) -> Option<Val> {
    fn find(vals: &BTreeMap<Symbol, Conc>, mut v: Symbol) -> Symbol {
        while let Some(Conc::Same(p)) = vals.get(&v) {
            v = *p;
        }
        v
    }
    match e {
        Expr::Nil => Some(Val::Nil),
        Expr::Int(k) => Some(Val::Int(*k)),
        Expr::Var(v) => match vals.get(&find(vals, *v))? {
            Conc::Val(val) => Some(*val),
            Conc::Same(_) => None,
        },
        Expr::Neg(inner) => match eval_const(vals, inner)? {
            Val::Int(k) => Some(Val::Int(k.checked_neg()?)),
            _ => None,
        },
        Expr::Add(a, b) => eval_arith(vals, a, b, i64::checked_add),
        Expr::Sub(a, b) => eval_arith(vals, a, b, i64::checked_sub),
        Expr::Mul(k, inner) => match eval_const(vals, inner)? {
            Val::Int(v) => Some(Val::Int(k.checked_mul(v)?)),
            _ => None,
        },
    }
}

fn eval_arith(
    vals: &BTreeMap<Symbol, Conc>,
    a: &Expr,
    b: &Expr,
    op: fn(i64, i64) -> Option<i64>,
) -> Option<Val> {
    match (eval_const(vals, a)?, eval_const(vals, b)?) {
        (Val::Int(x), Val::Int(y)) => Some(Val::Int(op(x, y)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::{parse_formula, parse_predicates, FieldDef, PredEnv, StructDef, TypeEnv};

    fn node_env() -> (TypeEnv, PredEnv) {
        let node = Symbol::intern("VNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![
                    FieldDef {
                        name: Symbol::intern("next"),
                        ty: FieldTy::Ptr(node),
                    },
                    FieldDef {
                        name: Symbol::intern("data"),
                        ty: FieldTy::Int,
                    },
                ],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for d in parse_predicates(
            "pred vsll(x: VNode*) := emp & x == nil
               | exists u, d. x -> VNode{next: u, data: d} * vsll(u);
             pred vlseg(x: VNode*, y: VNode*) := emp & x == y
               | exists u, d. x -> VNode{next: u, data: d} * vlseg(u, y);",
        )
        .unwrap()
        {
            preds.define(d).unwrap();
        }
        (types, preds)
    }

    fn heap_of(f: &str) -> SymHeap {
        parse_formula(f).unwrap()
    }

    #[test]
    fn enumerates_list_models_smallest_first() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let models = enumerate_models(&ctx, &heap_of("vsll(x)"), VerifyConfig::default());
        assert!(models.len() >= 3);
        assert_eq!(models[0].heap.len(), 0);
        assert_eq!(models[1].heap.len(), 1);
        assert_eq!(models[2].heap.len(), 2);
        for m in &models {
            assert!(ctx.holds_exact(m, &heap_of("vsll(x)")), "bad model {m:?}");
        }
    }

    #[test]
    fn refutes_overfit_candidate_with_two_node_witness() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        // Candidate inferred from single-node traces only; the general
        // sibling has a two-node model falsifying it.
        let candidate = heap_of("exists d. x -> VNode{next: nil, data: d} & res == x");
        let references = vec![heap_of(
            "exists d. vlseg(x, res) * res -> VNode{next: nil, data: d}",
        )];
        let prover = UnfoldProver::default();
        let verdict = prover.prove(
            &ctx,
            &Obligation {
                candidate: &candidate,
                references: &references,
            },
        );
        let Verdict::Refuted { witness } = verdict else {
            panic!("expected refutation, got {verdict}");
        };
        assert_eq!(witness.heap.len(), 2, "smallest countermodel has 2 cells");
    }

    #[test]
    fn verifies_candidate_entailed_by_sibling() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let candidate = heap_of("vsll(x)");
        let references = vec![
            heap_of("vlseg(x, res) * vsll(res) & res == nil"),
            heap_of("vsll(x)"),
        ];
        let prover = UnfoldProver::default();
        let verdict = prover.prove(
            &ctx,
            &Obligation {
                candidate: &candidate,
                references: &references,
            },
        );
        assert_eq!(verdict, Verdict::Verified, "lseg-to-nil models are slls");
    }

    #[test]
    fn unknown_without_covering_sibling() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let candidate = heap_of("vsll(y)");
        let references = vec![heap_of("vsll(x)")]; // mentions x, not y
        let prover = UnfoldProver::default();
        let verdict = prover.prove(
            &ctx,
            &Obligation {
                candidate: &candidate,
                references: &references,
            },
        );
        assert!(matches!(verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn pure_only_sibling_concretizes_to_empty_heap() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let candidate = heap_of("emp & res == nil");
        let references = vec![heap_of("emp & res == nil & x == nil")];
        let prover = UnfoldProver::default();
        let verdict = prover.prove(
            &ctx,
            &Obligation {
                candidate: &candidate,
                references: &references,
            },
        );
        assert_eq!(verdict, Verdict::Verified);
    }

    #[test]
    fn deterministic_enumeration() {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let f = heap_of("vlseg(x, y) * vsll(y)");
        let a = enumerate_models(&ctx, &f, VerifyConfig::default());
        let b = enumerate_models(&ctx, &f, VerifyConfig::default());
        assert_eq!(a, b);
    }
}
