//! Cross-run persistence for the entailment cache.
//!
//! The canonical keys of a [`CheckCache`] are stable across processes —
//! they contain no raw addresses, interner ids, or hash seeds — so a
//! cache populated by one run can warm the next. This module snapshots a
//! cache to a versioned binary file ([`save`]) and restores it
//! ([`load`]), turning corpus-scale workloads into incremental ones: the
//! second process over the same predicate library starts with every
//! previously established entailment already answered.
//!
//! # File format (version 1)
//!
//! A fixed header — magic `SLNGCACH`, format version, FNV-1a checksum of
//! the body — followed by the body: the environment fingerprint of the
//! saving engine ([`crate::env_fingerprint`]) and the length-prefixed
//! entries. Everything is little-endian. Three safety properties:
//!
//! * **Versioned**: a file written by an incompatible format version is
//!   rejected with [`PersistError::UnsupportedVersion`], never
//!   misparsed.
//! * **Checksummed**: torn writes and bit rot fail the body checksum and
//!   are rejected with [`PersistError::Corrupted`] (every read is also
//!   bounds-checked, so truncation cannot panic).
//! * **Environment-keyed**: the header records the fingerprint of the
//!   `(TypeEnv, PredEnv)` pair the entries were computed under; loading
//!   into an engine with a different fingerprint — a stale predicate
//!   library, a changed struct layout — is rejected with
//!   [`PersistError::FingerprintMismatch`] instead of serving wrong
//!   verdicts.
//!
//! Entries restored by [`load`] are marked *warm*: hits on them are
//! reported in [`CacheStats::warm_hits`](crate::CacheStats::warm_hits)
//! so callers can observe how much a warm start actually saved.
//!
//! Saves are atomic (write to a sibling temp file, then rename), so a
//! crash mid-save leaves any previous snapshot intact and concurrent
//! readers never observe a half-written file. Temp files stranded by a
//! crashed save are swept away by the next successful [`save`] or
//! [`load`] over the same path (only temps from other processes that
//! have sat untouched for at least a minute; in-flight saves — which
//! hold their temp for milliseconds — are never affected).
//!
//! # Examples
//!
//! Round-trip an (empty) cache and observe the fingerprint guard:
//!
//! ```
//! use sling_checker::{persist, CheckCache};
//!
//! let path = std::env::temp_dir().join(format!("sling-doc-cache-{}.bin", std::process::id()));
//! let cache = CheckCache::new();
//! persist::save(&cache, 42, &path)?;
//!
//! let restored = CheckCache::new();
//! assert_eq!(persist::load(&restored, 42, &path)?, 0);
//! assert!(matches!(
//!     persist::load(&restored, 7, &path), // different predicate library
//!     Err(persist::PersistError::FingerprintMismatch { .. })
//! ));
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Engines wire this through
//! `EngineBuilder::cache_path(..)` / `Engine::save_cache()` in the
//! `sling` crate; this module is the format layer underneath.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use sling_logic::Symbol;

use crate::cache::{fnv1a, CacheKey, CachedReduction, CanonName, CanonVal, CheckCache, QueryScope};

/// Leading bytes of every snapshot file.
const MAGIC: &[u8; 8] = b"SLNGCACH";

/// Current format version; bump on any layout change.
const FORMAT_VERSION: u32 = 1;

/// Why a snapshot file could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes are not a well-formed snapshot (bad magic, failed
    /// checksum, truncated or over-long body, invalid UTF-8, ...).
    Corrupted(String),
    /// The file is a snapshot, but written by an incompatible format
    /// version.
    UnsupportedVersion(u32),
    /// The snapshot was computed under a different `(TypeEnv, PredEnv)`
    /// pair — e.g. a stale predicate library — and its verdicts must not
    /// be reused.
    FingerprintMismatch {
        /// The fingerprint the loading engine runs under.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache snapshot I/O error: {e}"),
            PersistError::Corrupted(why) => write!(f, "cache snapshot corrupted: {why}"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "cache snapshot format version {v} unsupported (this build reads {FORMAT_VERSION})"
                )
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "cache snapshot was computed under a different environment \
                 (expected fingerprint {expected:#018x}, file has {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// Snapshots every entry of `cache` computed under `env_tag` to `path`,
/// returning how many entries were written. The write is atomic: a
/// sibling temp file is renamed over `path` only once fully written.
pub fn save(cache: &CheckCache, env_tag: u64, path: &Path) -> io::Result<u64> {
    let entries = cache.entries_for(env_tag);

    let mut body = Vec::with_capacity(64 + 128 * entries.len());
    write_u64(&mut body, env_tag);
    write_u64(&mut body, entries.len() as u64);
    for (key, value) in &entries {
        write_u64(&mut body, key.scope.node_budget);
        write_u32(&mut body, key.scope.fuel_slack);
        write_bytes(&mut body, key.text.as_bytes());
        match value {
            None => body.push(0),
            Some(red) => {
                body.push(1);
                write_u32(&mut body, red.residual.len() as u32);
                for id in &red.residual {
                    write_u32(&mut body, *id);
                }
                write_u32(&mut body, red.inst.len() as u32);
                for (name, val) in &red.inst {
                    match name {
                        CanonName::Binder(i) => {
                            body.push(0);
                            write_u32(&mut body, *i);
                        }
                        CanonName::Free(sym) => {
                            body.push(1);
                            write_bytes(&mut body, sym.as_str().as_bytes());
                        }
                    }
                    match val {
                        CanonVal::Nil => body.push(0),
                        CanonVal::Int(k) => {
                            body.push(1);
                            write_u64(&mut body, *k as u64);
                        }
                        CanonVal::InHeap(id) => {
                            body.push(2);
                            write_u32(&mut body, *id);
                        }
                        CanonVal::Dangling(id) => {
                            body.push(3);
                            write_u32(&mut body, *id);
                        }
                    }
                }
            }
        }
    }

    let mut file = Vec::with_capacity(MAGIC.len() + 12 + body.len());
    file.extend_from_slice(MAGIC);
    write_u32(&mut file, FORMAT_VERSION);
    write_u64(&mut file, fnv1a(&body));
    file.extend_from_slice(&body);

    // Atomic replace: a crash mid-write leaves the previous snapshot
    // intact, and concurrent loaders never see a torn file. The temp
    // name is unique per save (pid + counter), so concurrent saves to
    // the same path from one process cannot interleave on one temp
    // file — last rename wins with a complete snapshot.
    static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SAVE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, &file)?;
    match fs::rename(&tmp, path) {
        Ok(()) => {
            sweep_stale_temps(path);
            Ok(entries.len() as u64)
        }
        Err(e) => {
            fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// How old a sibling temp file must be before the sweep treats it as
/// stranded by a crash. A live save holds its temp for milliseconds
/// (one `fs::write` + `fs::rename`), so a minute of age means its
/// writer is gone.
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(60);

/// Removes temp files stranded next to `path` by *crashed* saves: a
/// crash between `fs::write` and `fs::rename` leaves `<stem>.tmp.<pid>.<n>`
/// behind forever, so every successful [`save`] and every [`load`]
/// sweeps the siblings. Two guards keep in-flight saves safe: temps of
/// the current process are never touched (a concurrent [`save`] on
/// another thread may be mid-write), and temps of other processes are
/// only removed once older than [`STALE_TEMP_AGE`] — a live sibling's
/// temp exists for milliseconds, a crashed one forever. Best-effort:
/// I/O errors here are ignored (the sweep is hygiene, not correctness).
fn sweep_stale_temps(path: &Path) {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return;
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let prefix = format!("{stem}.tmp.");
    let own_pid = std::process::id().to_string();
    let Ok(entries) = fs::read_dir(parent) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        // rest is "<pid>.<counter>"; skip temps owned by this process.
        if rest.split('.').next() == Some(own_pid.as_str()) {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= STALE_TEMP_AGE);
        if old_enough {
            fs::remove_file(entry.path()).ok();
        }
    }
}

/// Loads the snapshot at `path` into `cache`, marking every restored
/// entry warm, and returns how many entries were actually retained
/// (less than the file's entry count when the target cache is near its
/// capacity). `env_tag` must match the fingerprint recorded in the
/// file; see [`PersistError`] for the rejection cases. The target cache
/// is only modified after the whole file has validated, so a rejected
/// load leaves it untouched.
pub fn load(cache: &CheckCache, env_tag: u64, path: &Path) -> Result<u64, PersistError> {
    sweep_stale_temps(path);
    let bytes = fs::read(path)?;
    let mut r = Reader::new(&bytes);

    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(PersistError::Corrupted("bad magic".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let checksum = r.u64()?;
    let body = &bytes[r.pos..];
    if fnv1a(body) != checksum {
        return Err(PersistError::Corrupted("checksum mismatch".into()));
    }

    let found = r.u64()?;
    if found != env_tag {
        return Err(PersistError::FingerprintMismatch {
            expected: env_tag,
            found,
        });
    }

    let count = r.u64()?;
    // Parse fully before touching the cache, so a corrupted tail cannot
    // leave a half-loaded (but checksum-passing prefix) state behind.
    let mut parsed: Vec<(CacheKey, Option<CachedReduction>)> = Vec::new();
    for _ in 0..count {
        let node_budget = r.u64()?;
        let fuel_slack = r.u32()?;
        let text = r.string()?;
        let scope = QueryScope {
            env_tag,
            node_budget,
            fuel_slack,
        };
        let value = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                let mut residual = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    residual.push(r.u32()?);
                }
                let n = r.u32()? as usize;
                let mut inst = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let name = match r.u8()? {
                        0 => CanonName::Binder(r.u32()?),
                        1 => CanonName::Free(Symbol::intern(&r.string()?)),
                        t => {
                            return Err(PersistError::Corrupted(format!("bad name tag {t}")));
                        }
                    };
                    let val = match r.u8()? {
                        0 => CanonVal::Nil,
                        1 => CanonVal::Int(r.u64()? as i64),
                        2 => CanonVal::InHeap(r.u32()?),
                        3 => CanonVal::Dangling(r.u32()?),
                        t => {
                            return Err(PersistError::Corrupted(format!("bad value tag {t}")));
                        }
                    };
                    inst.push((name, val));
                }
                Some(CachedReduction { residual, inst })
            }
            t => return Err(PersistError::Corrupted(format!("bad verdict tag {t}"))),
        };
        parsed.push((CacheKey::new(scope, text), value));
    }
    if r.pos != bytes.len() {
        return Err(PersistError::Corrupted(
            "trailing bytes after entries".into(),
        ));
    }

    let mut loaded = 0;
    for (key, value) in parsed {
        if cache.store_warm(key, value) {
            loaded += 1;
        }
    }
    Ok(loaded)
}

fn write_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian reader over the snapshot bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupted("unexpected end of file".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupted("invalid UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckCtx;
    use sling_logic::{
        parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, TypeEnv,
    };
    use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};
    use std::path::PathBuf;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn envs() -> (TypeEnv, PredEnv) {
        let node = sym("PersistNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                }],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for d in parse_predicates(
            "pred plist(x: PersistNode*) := emp & x == nil
               | exists u. x -> PersistNode{next: u} * plist(u);",
        )
        .unwrap()
        {
            preds.define(d).unwrap();
        }
        (types, preds)
    }

    fn list_model(n: u64, base: u64) -> StackHeapModel {
        let mut heap = Heap::new();
        for i in 0..n {
            let next = if i + 1 < n {
                Val::Addr(Loc::new(base + i + 1))
            } else {
                Val::Nil
            };
            heap.insert(
                Loc::new(base + i),
                HeapCell::new(sym("PersistNode"), vec![next]),
            );
        }
        let mut stack = Stack::new();
        let head = if n == 0 {
            Val::Nil
        } else {
            Val::Addr(Loc::new(base))
        };
        stack.bind(sym("x"), head);
        StackHeapModel::new(stack, heap)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sling-persist-test-{}-{name}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn round_trip_restores_verdicts_and_counts_warm_hits() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let env_tag = ctx.env_tag;
        let f = parse_formula("plist(x)").unwrap();
        // Populate: positive verdicts of several shapes, one negative.
        for n in 0..4 {
            assert!(ctx.check(&list_model(n, 1), &f).is_some());
        }
        let mut cyc = list_model(2, 1);
        let c1 = Loc::new(1);
        cyc.heap.insert(
            Loc::new(2),
            HeapCell::new(sym("PersistNode"), vec![Val::Addr(c1)]),
        );
        assert!(ctx.check(&cyc, &f).is_none());
        let saved_stats = cache.stats();

        let path = temp_path("round-trip");
        let written = save(&cache, env_tag, &path).unwrap();
        assert_eq!(written, saved_stats.entries);

        // A fresh cache in a "new process": every verdict is answered
        // warm, bit-identically to an uncached search.
        let warm = CheckCache::new();
        let loaded = load(&warm, env_tag, &path).unwrap();
        assert_eq!(loaded, written);
        assert_eq!(warm.stats().entries, saved_stats.entries);

        let warm_ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &warm);
        let plain = CheckCtx::new(&types, &preds);
        for n in 0..4 {
            // Different base addresses: isomorphic shapes still hit.
            let m = list_model(n, 400 + 10 * n);
            assert_eq!(warm_ctx.check(&m, &f), plain.check(&m, &f));
        }
        assert!(warm_ctx.check(&cyc, &f).is_none());
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "every query must be warm: {stats:?}");
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.warm_hits, 5, "hits on loaded entries are warm");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_entries_are_not_counted_warm() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(2, 1), &f);
        let _ = ctx.check(&list_model(2, 70), &f);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.warm_hits), (1, 0));
    }

    #[test]
    fn mismatched_fingerprint_is_rejected_and_cache_untouched() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(3, 1), &f);

        let path = temp_path("fingerprint");
        save(&cache, ctx.env_tag, &path).unwrap();

        let other = CheckCache::new();
        let err = load(&other, ctx.env_tag ^ 1, &path).unwrap_err();
        assert!(!err.to_string().is_empty());
        match err {
            PersistError::FingerprintMismatch { expected, found } => {
                assert_eq!(expected, ctx.env_tag ^ 1);
                assert_eq!(found, ctx.env_tag);
            }
            unexpected => panic!("expected FingerprintMismatch, got {unexpected:?}"),
        }
        assert_eq!(other.stats().entries, 0, "rejected load must not insert");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        for n in 0..3 {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let path = temp_path("corrupt");
        save(&cache, ctx.env_tag, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one body byte: checksum must catch it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        std::fs::write(&path, &flipped).unwrap();
        let fresh = CheckCache::new();
        assert!(matches!(
            load(&fresh, ctx.env_tag, &path),
            Err(PersistError::Corrupted(_))
        ));
        assert_eq!(fresh.stats().entries, 0, "rejected load must not insert");

        // Truncations anywhere must error, never panic.
        for cut in [0, 3, 9, 13, 19, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                load(&CheckCache::new(), ctx.env_tag, &path).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // Not a snapshot at all.
        std::fs::write(&path, b"definitely not a cache").unwrap();
        assert!(matches!(
            load(&CheckCache::new(), ctx.env_tag, &path),
            Err(PersistError::Corrupted(_))
        ));

        // A future format version is refused, not misparsed.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            load(&CheckCache::new(), ctx.env_tag, &path),
            Err(PersistError::UnsupportedVersion(99))
        ));

        // A missing file surfaces as Io.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load(&CheckCache::new(), ctx.env_tag, &path),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn stale_temp_files_are_swept_on_save_and_load() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(2, 1), &f);

        let path = temp_path("sweep");
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let parent = path.parent().unwrap().to_path_buf();
        // A temp stranded by a "crashed" save of a dead process (a pid
        // this test does not have, aged past the staleness window),
        // plus a *fresh* other-pid temp (a live sibling mid-save) and
        // one belonging to this process (a concurrent save mid-write) —
        // both of which must survive.
        let stale = parent.join(format!("{stem}.tmp.999999999.0"));
        let fresh = parent.join(format!("{stem}.tmp.999999998.0"));
        let own = parent.join(format!("{stem}.tmp.{}.7", std::process::id()));
        let plant_stale = || {
            std::fs::write(&stale, b"half-written snapshot").unwrap();
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&stale)
                .unwrap();
            let crashed_at = std::time::SystemTime::now() - 2 * super::STALE_TEMP_AGE;
            file.set_times(std::fs::FileTimes::new().set_modified(crashed_at))
                .unwrap();
        };
        plant_stale();
        std::fs::write(&fresh, b"in-flight sibling snapshot").unwrap();
        std::fs::write(&own, b"in-flight snapshot").unwrap();

        save(&cache, ctx.env_tag, &path).unwrap();
        assert!(
            !stale.exists(),
            "a successful save must sweep aged dead-process temps"
        );
        assert!(fresh.exists(), "fresh other-pid temps may be mid-save");
        assert!(own.exists(), "own-pid temps are in flight, not stale");

        plant_stale();
        let restored = CheckCache::new();
        assert!(load(&restored, ctx.env_tag, &path).unwrap() > 0);
        assert!(!stale.exists(), "load must sweep aged temps too");
        assert!(fresh.exists());
        assert!(own.exists());

        std::fs::remove_file(&fresh).ok();
        std::fs::remove_file(&own).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_only_retained_entries() {
        // Loading into a near-capacity cache keeps what fits; the
        // returned count must reflect what was retained, not the file.
        use crate::SHARD_COUNT;
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        for n in 0..(4 * SHARD_COUNT as u64) {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let path = temp_path("capacity");
        let written = save(&cache, ctx.env_tag, &path).unwrap();

        let tiny = CheckCache::with_capacity(SHARD_COUNT); // one entry per shard
        let loaded = load(&tiny, ctx.env_tag, &path).unwrap();
        assert_eq!(loaded, tiny.stats().entries);
        assert!(
            loaded < written,
            "a tiny cache cannot retain the whole snapshot ({loaded} vs {written})"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_filters_by_environment() {
        // One shared cache, two environments: a snapshot for one env
        // contains only that env's entries.
        let (types, preds_real) = envs();
        let mut preds_other = PredEnv::new();
        for d in parse_predicates("pred plist(x: PersistNode*) := emp & x == nil;").unwrap() {
            preds_other.define(d).unwrap();
        }
        let cache = CheckCache::new();
        let a = CheckCtx::with_cache(&types, &preds_real, Default::default(), &cache);
        let b = CheckCtx::with_cache(&types, &preds_other, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = a.check(&list_model(2, 1), &f);
        let _ = b.check(&list_model(2, 1), &f);
        assert_eq!(cache.stats().entries, 2);

        let path = temp_path("filter");
        assert_eq!(save(&cache, a.env_tag, &path).unwrap(), 1);
        let only_a = CheckCache::new();
        assert_eq!(load(&only_a, a.env_tag, &path).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }
}
