//! Cross-run persistence for the entailment cache.
//!
//! The canonical keys of a [`CheckCache`] are stable across processes —
//! they contain no raw addresses, interner ids, or hash seeds — so a
//! cache populated by one run can warm the next. This module snapshots a
//! cache to a versioned binary file ([`save`]), restores it ([`load`]),
//! and folds sibling snapshots into an already-live cache ([`merge`]),
//! turning corpus-scale workloads into incremental ones: the second
//! process over the same predicate library starts with every previously
//! established entailment already answered.
//!
//! # File format (version 2)
//!
//! A fixed header — magic `SLNGCACH`, format version, FNV-1a checksum of
//! the body — followed by the body:
//!
//! ```text
//! env_tag: u64            ; overall environment fingerprint
//! types_tag: u64          ; fingerprint of the TypeEnv alone
//! generation: u64         ; save stamp ([`generation_stamp`]), newest-wins merge order
//! npreds: u64             ; per-predicate fingerprint table
//!   (name: string, fingerprint: u64)*
//! nentries: u64
//!   entry*                ; scope, canonical text, pred-mention indices, verdict
//! ```
//!
//! Everything is little-endian. Safety properties:
//!
//! * **Versioned**: a file written by an incompatible format version is
//!   rejected with [`PersistError::UnsupportedVersion`], never
//!   misparsed.
//! * **Checksummed**: torn writes and bit rot fail the body checksum and
//!   are rejected with [`PersistError::Corrupted`] (every read is also
//!   bounds-checked, so truncation cannot panic).
//! * **Environment-keyed, per predicate**: the header records one
//!   fingerprint per predicate definition (plus a whole-`TypeEnv` tag).
//!   A changed type environment rejects the file wholesale
//!   ([`PersistError::FingerprintMismatch`]); a *partial*
//!   predicate-library change drops only the entries whose formulas
//!   (transitively) touch a changed, removed, or renamed predicate —
//!   the survivors are loaded and the drop is reported as
//!   [`PersistError::PartialStale`].
//!
//! Entries restored by [`load`] or [`merge`] are marked *warm*: hits on
//! them are reported in [`CacheStats::warm_hits`](crate::CacheStats::warm_hits)
//! so callers can observe how much a warm start actually saved.
//!
//! Saves are atomic (write to a sibling temp file, then rename), so a
//! crash mid-save leaves any previous snapshot intact and concurrent
//! readers never observe a half-written file. Temp files stranded by a
//! crashed save are swept away by the next successful [`save`] or
//! [`load`] over the same path (only temps from other processes that
//! have sat untouched for at least a minute; in-flight saves — which
//! hold their temp for milliseconds — are never affected).
//!
//! # Load vs merge
//!
//! [`load`] is the boot path: it assumes an empty (or expendable)
//! cache, replaces colliding entries unconditionally, and surfaces
//! partial staleness as a typed error so the caller can decide to
//! rewrite the snapshot. [`merge`] is the fold path for long-lived
//! processes absorbing sibling snapshots: collisions resolve
//! newest-generation-wins (live-computed entries always win), capacity
//! is enforced without evicting live entries, and the outcome is
//! returned as counts ([`MergeStats`]) because a partially stale
//! sibling is routine, not exceptional.
//!
//! # Examples
//!
//! Round-trip an (empty) cache and observe the fingerprint guard:
//!
//! ```
//! use sling_checker::{persist, CheckCache, EnvProfile};
//! use sling_logic::{FieldDef, FieldTy, PredEnv, StructDef, Symbol, TypeEnv};
//!
//! let profile = EnvProfile::new(&TypeEnv::new(), &PredEnv::new());
//! let path = std::env::temp_dir().join(format!("sling-doc-cache-{}.bin", std::process::id()));
//! let cache = CheckCache::new();
//! persist::save(&cache, &profile, &path)?;
//!
//! let restored = CheckCache::new();
//! assert_eq!(persist::load(&restored, &profile, &path)?, 0);
//!
//! // A different *type* environment rejects the file wholesale.
//! let mut other_types = TypeEnv::new();
//! other_types.define(StructDef {
//!     name: Symbol::intern("DocNode"),
//!     fields: vec![FieldDef { name: Symbol::intern("next"), ty: FieldTy::Int }],
//! })?;
//! let other = EnvProfile::new(&other_types, &PredEnv::new());
//! assert!(matches!(
//!     persist::load(&restored, &other, &path),
//!     Err(persist::PersistError::FingerprintMismatch { .. })
//! ));
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Engines wire this through
//! `EngineBuilder::cache_path(..)` / `Engine::save_cache()` /
//! `Engine::absorb_snapshot(..)` in the `sling` crate; this module is
//! the format layer underneath.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use sling_logic::Symbol;

use crate::cache::{
    fnv1a, CacheKey, CachedReduction, CanonName, CanonVal, CheckCache, EnvProfile, QueryScope,
};

/// Leading bytes of every snapshot file.
const MAGIC: &[u8; 8] = b"SLNGCACH";

/// Current format version; bump on any layout change.
const FORMAT_VERSION: u32 = 2;

/// Why a snapshot file could not be loaded (or was loaded only
/// partially).
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes are not a well-formed snapshot (bad magic, failed
    /// checksum, truncated or over-long body, invalid UTF-8, ...).
    Corrupted(String),
    /// The file is a snapshot, but written by an incompatible format
    /// version.
    UnsupportedVersion(u32),
    /// The snapshot's *type environment* differs from the loading
    /// engine's — struct layouts feed every verdict, so nothing in the
    /// file can be reused.
    FingerprintMismatch {
        /// The type-environment fingerprint the loading engine runs
        /// under.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// The predicate library changed *partially* since the snapshot was
    /// saved. The `kept` entries — those touching only unchanged
    /// predicates — **were loaded** into the cache before this error
    /// was returned; only the `dropped` entries, whose formulas touch a
    /// changed, removed, or renamed predicate, were discarded. Callers
    /// that treat the cache as an optimization count `kept` as the warm
    /// size and may want to re-save to shed the stale portion.
    PartialStale {
        /// Entries restored (valid under the current environment).
        kept: u64,
        /// Entries discarded because a predicate they depend on
        /// changed.
        dropped: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache snapshot I/O error: {e}"),
            PersistError::Corrupted(why) => write!(f, "cache snapshot corrupted: {why}"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "cache snapshot format version {v} unsupported (this build reads {FORMAT_VERSION})"
                )
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "cache snapshot was computed under a different type environment \
                 (expected fingerprint {expected:#018x}, file has {found:#018x})"
            ),
            PersistError::PartialStale { kept, dropped } => write!(
                f,
                "cache snapshot partially stale: {kept} entries restored, \
                 {dropped} dropped for touching changed predicates"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// Outcome of folding one snapshot into a live cache with [`merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Entries inserted (or replacing an older-generation entry).
    pub merged: u64,
    /// Entries skipped on collision (the resident entry was newer or
    /// equal in generation) or because their shard was at capacity.
    pub skipped: u64,
    /// Entries dropped for touching a predicate whose definition
    /// changed since the snapshot was saved.
    pub stale: u64,
}

impl std::fmt::Display for MergeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} merged, {} skipped, {} stale",
            self.merged, self.skipped, self.stale
        )
    }
}

/// Milliseconds since the Unix epoch — the wall-clock component of
/// [`generation_stamp`].
fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Low bits of every [`generation_stamp`] reserved for the per-process
/// monotonic sub-counter (4096 distinct stamps per millisecond before
/// the counter borrows from future milliseconds — and even then stamps
/// only ever move forward).
const GENERATION_SUB_BITS: u32 = 12;

/// A fresh generation stamp for newest-wins ordering: wall-clock
/// milliseconds shifted left by `GENERATION_SUB_BITS`, forced
/// *strictly* above both every stamp this process has already issued
/// and `floor`.
///
/// The sub-counter is the same-millisecond tiebreak: two snapshots
/// saved by one process within a single millisecond used to receive
/// equal generations, and equal generations merge order-dependently
/// (the colliding offer is skipped, so whichever snapshot merged first
/// won). With the counter, stamps issued by a process are strictly
/// increasing, so newest-wins is deterministic regardless of merge
/// order. Cross-host, wall clocks remain the ordering, exactly as
/// before; `floor` (callers pass the highest generation they have
/// absorbed) keeps a process ahead of future-stamped siblings it has
/// already merged.
///
/// The cache server reuses this stamp for `put` batches, which is what
/// makes its anti-entropy watermark strictly increasing.
pub fn generation_stamp(floor: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static LAST: AtomicU64 = AtomicU64::new(0);
    let wall = now_millis().saturating_mul(1 << GENERATION_SUB_BITS);
    let mut prev = LAST.load(Ordering::Relaxed);
    loop {
        let next = wall
            .max(prev.saturating_add(1))
            .max(floor.saturating_add(1));
        match LAST.compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(observed) => prev = observed,
        }
    }
}

/// Snapshots every entry of `cache` computed under `profile`'s
/// environment to `path`, returning how many entries were written. The
/// write is atomic: a sibling temp file is renamed over `path` only
/// once fully written.
///
/// The snapshot's generation stamp is a [`generation_stamp`]: wall
/// clock plus a per-process monotonic sub-counter (so two saves within
/// one millisecond still order deterministically), and never at or
/// below the highest generation this cache has absorbed — so a process
/// that merged a future-stamped sibling (cross-host clock skew) still
/// writes snapshots that win newest-generation [`merge`] collisions
/// against it. Wall clocks remain the cross-host ordering, so skew
/// between hosts that never exchange snapshots can still mis-order; a
/// shared directory self-corrects after one merge-save cycle.
pub fn save(cache: &CheckCache, profile: &EnvProfile, path: &Path) -> io::Result<u64> {
    let generation = generation_stamp(cache.max_generation());
    save_at(cache, profile, path, generation)
}

/// [`save`] with an explicit generation stamp (tests pin generations to
/// make newest-wins merging deterministic).
pub(crate) fn save_at(
    cache: &CheckCache,
    profile: &EnvProfile,
    path: &Path,
    generation: u64,
) -> io::Result<u64> {
    let entries = cache.entries_for(profile.env_tag());
    let table: Vec<(Symbol, u64)> = profile.pred_table().collect();
    let index_of: BTreeMap<Symbol, u32> = table
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (*name, i as u32))
        .collect();

    let mut body = Vec::with_capacity(64 + 128 * entries.len());
    write_u64(&mut body, profile.env_tag());
    write_u64(&mut body, profile.types_tag());
    write_u64(&mut body, generation);
    write_u64(&mut body, table.len() as u64);
    for (name, fingerprint) in &table {
        write_bytes(&mut body, name.as_str().as_bytes());
        write_u64(&mut body, *fingerprint);
    }
    // Entries serialize into their own buffer first, so the count
    // written is exactly the count serialized. An entry whose mention
    // set escapes the profile's table cannot be expressed (and could
    // not be validated on load); it is skipped — mentions always come
    // from formulas checked under this environment, so in practice
    // nothing is.
    let mut written = 0u64;
    let mut entry_bytes = Vec::with_capacity(128 * entries.len());
    for entry in &entries {
        let Some(indices) = entry
            .preds
            .iter()
            .map(|name| index_of.get(name).copied())
            .collect::<Option<Vec<u32>>>()
        else {
            continue;
        };
        write_u64(&mut entry_bytes, entry.key.scope.node_budget);
        write_u32(&mut entry_bytes, entry.key.scope.fuel_slack);
        write_bytes(&mut entry_bytes, entry.key.text.as_bytes());
        write_u32(&mut entry_bytes, indices.len() as u32);
        for index in &indices {
            write_u32(&mut entry_bytes, *index);
        }
        match &entry.value {
            None => entry_bytes.push(0),
            Some(red) => {
                entry_bytes.push(1);
                write_u32(&mut entry_bytes, red.residual.len() as u32);
                for id in &red.residual {
                    write_u32(&mut entry_bytes, *id);
                }
                write_u32(&mut entry_bytes, red.inst.len() as u32);
                for (name, val) in &red.inst {
                    match name {
                        CanonName::Binder(i) => {
                            entry_bytes.push(0);
                            write_u32(&mut entry_bytes, *i);
                        }
                        CanonName::Free(sym) => {
                            entry_bytes.push(1);
                            write_bytes(&mut entry_bytes, sym.as_str().as_bytes());
                        }
                    }
                    match val {
                        CanonVal::Nil => entry_bytes.push(0),
                        CanonVal::Int(k) => {
                            entry_bytes.push(1);
                            write_u64(&mut entry_bytes, *k as u64);
                        }
                        CanonVal::InHeap(id) => {
                            entry_bytes.push(2);
                            write_u32(&mut entry_bytes, *id);
                        }
                        CanonVal::Dangling(id) => {
                            entry_bytes.push(3);
                            write_u32(&mut entry_bytes, *id);
                        }
                    }
                }
            }
        }
        written += 1;
    }
    write_u64(&mut body, written);
    body.extend_from_slice(&entry_bytes);

    let mut file = Vec::with_capacity(MAGIC.len() + 12 + body.len());
    file.extend_from_slice(MAGIC);
    write_u32(&mut file, FORMAT_VERSION);
    write_u64(&mut file, fnv1a(&body));
    file.extend_from_slice(&body);

    // Atomic replace: a crash mid-write leaves the previous snapshot
    // intact, and concurrent loaders never see a torn file. The temp
    // name is unique per save (pid + counter), so concurrent saves to
    // the same path from one process cannot interleave on one temp
    // file — last rename wins with a complete snapshot.
    static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SAVE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, &file)?;
    match fs::rename(&tmp, path) {
        Ok(()) => {
            sweep_stale_temps(path);
            Ok(written)
        }
        Err(e) => {
            fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// How old a sibling temp file must be before the sweep treats it as
/// stranded by a crash. A live save holds its temp for milliseconds
/// (one `fs::write` + `fs::rename`), so a minute of age means its
/// writer is gone.
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(60);

/// Removes temp files stranded next to `path` by *crashed* saves: a
/// crash between `fs::write` and `fs::rename` leaves `<stem>.tmp.<pid>.<n>`
/// behind forever, so every successful [`save`] and every [`load`]
/// sweeps the siblings. Two guards keep in-flight saves safe: temps of
/// the current process are never touched (a concurrent [`save`] on
/// another thread may be mid-write), and temps of other processes are
/// only removed once older than [`STALE_TEMP_AGE`] — a live sibling's
/// temp exists for milliseconds, a crashed one forever. Best-effort:
/// I/O errors here are ignored (the sweep is hygiene, not correctness).
fn sweep_stale_temps(path: &Path) {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return;
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let prefix = format!("{stem}.tmp.");
    let own_pid = std::process::id().to_string();
    let Ok(entries) = fs::read_dir(parent) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        // rest is "<pid>.<counter>"; skip temps owned by this process.
        if rest.split('.').next() == Some(own_pid.as_str()) {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= STALE_TEMP_AGE);
        if old_enough {
            fs::remove_file(entry.path()).ok();
        }
    }
}

/// One entry parsed out of a snapshot, already validated against the
/// loading environment (stale entries are dropped during parsing).
struct ParsedEntry {
    key: CacheKey,
    value: Option<CachedReduction>,
    preds: Vec<Symbol>,
}

/// A fully parsed, environment-validated snapshot.
struct ParsedSnapshot {
    generation: u64,
    entries: Vec<ParsedEntry>,
    /// Entries discarded for touching changed predicates.
    dropped: u64,
}

/// Parses and validates a snapshot against `profile`. Structural
/// problems (corruption, truncation, version skew) and a changed type
/// environment are errors; a partially changed predicate library drops
/// the affected entries and reports them in
/// [`ParsedSnapshot::dropped`]. The cache is untouched — callers insert
/// the surviving entries with their own collision policy.
fn parse_snapshot(bytes: &[u8], profile: &EnvProfile) -> Result<ParsedSnapshot, PersistError> {
    let mut r = Reader::new(bytes);

    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(PersistError::Corrupted("bad magic".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let checksum = r.u64()?;
    let body = &bytes[r.pos..];
    if fnv1a(body) != checksum {
        return Err(PersistError::Corrupted("checksum mismatch".into()));
    }

    let file_env_tag = r.u64()?;
    let file_types_tag = r.u64()?;
    if file_types_tag != profile.types_tag() {
        return Err(PersistError::FingerprintMismatch {
            expected: profile.types_tag(),
            found: file_types_tag,
        });
    }
    let generation = r.u64()?;

    let npreds = r.u64()? as usize;
    let mut table_names: Vec<Symbol> = Vec::with_capacity(npreds.min(1 << 16));
    let mut old_table: BTreeMap<Symbol, u64> = BTreeMap::new();
    for _ in 0..npreds {
        let name = Symbol::intern(&r.string()?);
        let fingerprint = r.u64()?;
        table_names.push(name);
        old_table.insert(name, fingerprint);
    }
    // Same overall tag: the whole environment (types and every
    // predicate) is unchanged, so per-entry validation is a no-op.
    let env_unchanged = file_env_tag == profile.env_tag();

    let count = r.u64()?;
    // Parse fully before touching the cache, so a corrupted tail cannot
    // leave a half-loaded (but checksum-passing prefix) state behind.
    let mut entries: Vec<ParsedEntry> = Vec::new();
    let mut dropped = 0u64;
    for _ in 0..count {
        let node_budget = r.u64()?;
        let fuel_slack = r.u32()?;
        let text = r.string()?;
        let nmentions = r.u32()? as usize;
        let mut preds = Vec::with_capacity(nmentions.min(1 << 16));
        for _ in 0..nmentions {
            let index = r.u32()? as usize;
            let name = table_names.get(index).copied().ok_or_else(|| {
                PersistError::Corrupted(format!("pred index {index} out of range"))
            })?;
            preds.push(name);
        }
        let value = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                let mut residual = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    residual.push(r.u32()?);
                }
                let n = r.u32()? as usize;
                let mut inst = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let name = match r.u8()? {
                        0 => CanonName::Binder(r.u32()?),
                        1 => CanonName::Free(Symbol::intern(&r.string()?)),
                        t => {
                            return Err(PersistError::Corrupted(format!("bad name tag {t}")));
                        }
                    };
                    let val = match r.u8()? {
                        0 => CanonVal::Nil,
                        1 => CanonVal::Int(r.u64()? as i64),
                        2 => CanonVal::InHeap(r.u32()?),
                        3 => CanonVal::Dangling(r.u32()?),
                        t => {
                            return Err(PersistError::Corrupted(format!("bad value tag {t}")));
                        }
                    };
                    inst.push((name, val));
                }
                Some(CachedReduction { residual, inst })
            }
            t => return Err(PersistError::Corrupted(format!("bad verdict tag {t}"))),
        };
        if !env_unchanged && !profile.closure_unchanged(&old_table, &preds) {
            dropped += 1;
            continue;
        }
        // Entries are re-keyed under the *loading* environment's tag:
        // their validated predicate closure is unchanged, so verdicts
        // transfer, and re-keying is what lets them answer this
        // process's queries.
        let scope = QueryScope {
            env_tag: profile.env_tag(),
            node_budget,
            fuel_slack,
        };
        entries.push(ParsedEntry {
            key: CacheKey::new(scope, text),
            value,
            preds,
        });
    }
    if r.pos != bytes.len() {
        return Err(PersistError::Corrupted(
            "trailing bytes after entries".into(),
        ));
    }
    Ok(ParsedSnapshot {
        generation,
        entries,
        dropped,
    })
}

/// Loads the snapshot at `path` into `cache`, marking every restored
/// entry warm, and returns how many entries were actually retained
/// (less than the file's entry count when the target cache is near its
/// capacity). The snapshot must have been saved under the same type
/// environment; see [`PersistError`] for the rejection cases.
///
/// A *partial* predicate-library change is not a rejection: entries
/// touching only unchanged predicates are loaded, the rest are dropped,
/// and the split is reported as [`PersistError::PartialStale`] — the
/// cache **does** hold the `kept` entries when that error is returned.
/// Structurally invalid files leave the cache untouched.
pub fn load(cache: &CheckCache, profile: &EnvProfile, path: &Path) -> Result<u64, PersistError> {
    sweep_stale_temps(path);
    let bytes = fs::read(path)?;
    let parsed = parse_snapshot(&bytes, profile)?;
    let mut loaded = 0;
    for entry in parsed.entries {
        if cache.store_warm(entry.key, entry.value, &entry.preds, parsed.generation) {
            loaded += 1;
        }
    }
    if parsed.dropped > 0 {
        return Err(PersistError::PartialStale {
            kept: loaded,
            dropped: parsed.dropped,
        });
    }
    Ok(loaded)
}

/// Folds the snapshot at `path` into an already-live `cache`:
/// collisions resolve newest-generation-wins (entries computed live in
/// this process always beat snapshot entries; between snapshots the
/// later save wins), capacity is enforced without evicting live
/// entries, and entries touching changed predicates are dropped. The
/// counts come back as [`MergeStats`]; only structural problems and a
/// changed type environment are errors.
pub fn merge(
    cache: &CheckCache,
    profile: &EnvProfile,
    path: &Path,
) -> Result<MergeStats, PersistError> {
    let bytes = fs::read(path)?;
    let parsed = parse_snapshot(&bytes, profile)?;
    let mut stats = MergeStats {
        stale: parsed.dropped,
        ..MergeStats::default()
    };
    for entry in parsed.entries {
        if cache.merge_warm(entry.key, entry.value, &entry.preds, parsed.generation) {
            stats.merged += 1;
        } else {
            stats.skipped += 1;
        }
    }
    Ok(stats)
}

fn write_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian reader over the snapshot bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or_else(|| PersistError::Corrupted("unexpected end of file".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupted("invalid UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckCtx;
    use sling_logic::{
        parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, TypeEnv,
    };
    use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};
    use std::path::PathBuf;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn envs() -> (TypeEnv, PredEnv) {
        let node = sym("PersistNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                }],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for d in parse_predicates(
            "pred plist(x: PersistNode*) := emp & x == nil
               | exists u. x -> PersistNode{next: u} * plist(u);",
        )
        .unwrap()
        {
            preds.define(d).unwrap();
        }
        (types, preds)
    }

    fn list_model(n: u64, base: u64) -> StackHeapModel {
        let mut heap = Heap::new();
        for i in 0..n {
            let next = if i + 1 < n {
                Val::Addr(Loc::new(base + i + 1))
            } else {
                Val::Nil
            };
            heap.insert(
                Loc::new(base + i),
                HeapCell::new(sym("PersistNode"), vec![next]),
            );
        }
        let mut stack = Stack::new();
        let head = if n == 0 {
            Val::Nil
        } else {
            Val::Addr(Loc::new(base))
        };
        stack.bind(sym("x"), head);
        StackHeapModel::new(stack, heap)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sling-persist-test-{}-{name}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn round_trip_restores_verdicts_and_counts_warm_hits() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        assert_eq!(ctx.env_tag, profile.env_tag());
        let f = parse_formula("plist(x)").unwrap();
        // Populate: positive verdicts of several shapes, one negative.
        for n in 0..4 {
            assert!(ctx.check(&list_model(n, 1), &f).is_some());
        }
        let mut cyc = list_model(2, 1);
        let c1 = Loc::new(1);
        cyc.heap.insert(
            Loc::new(2),
            HeapCell::new(sym("PersistNode"), vec![Val::Addr(c1)]),
        );
        assert!(ctx.check(&cyc, &f).is_none());
        let saved_stats = cache.stats();

        let path = temp_path("round-trip");
        let written = save(&cache, &profile, &path).unwrap();
        assert_eq!(written, saved_stats.entries);

        // A fresh cache in a "new process": every verdict is answered
        // warm, bit-identically to an uncached search.
        let warm = CheckCache::new();
        let loaded = load(&warm, &profile, &path).unwrap();
        assert_eq!(loaded, written);
        assert_eq!(warm.stats().entries, saved_stats.entries);

        let warm_ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &warm);
        let plain = CheckCtx::new(&types, &preds);
        for n in 0..4 {
            // Different base addresses: isomorphic shapes still hit.
            let m = list_model(n, 400 + 10 * n);
            assert_eq!(warm_ctx.check(&m, &f), plain.check(&m, &f));
        }
        assert!(warm_ctx.check(&cyc, &f).is_none());
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "every query must be warm: {stats:?}");
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.warm_hits, 5, "hits on loaded entries are warm");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_entries_are_not_counted_warm() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(2, 1), &f);
        let _ = ctx.check(&list_model(2, 70), &f);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.warm_hits), (1, 0));
    }

    #[test]
    fn mismatched_types_are_rejected_and_cache_untouched() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(3, 1), &f);

        let path = temp_path("fingerprint");
        save(&cache, &profile, &path).unwrap();

        // A different struct layout: the file is rejected wholesale.
        let mut other_types = TypeEnv::new();
        other_types
            .define(StructDef {
                name: sym("PersistNode"),
                fields: vec![
                    FieldDef {
                        name: sym("next"),
                        ty: FieldTy::Ptr(sym("PersistNode")),
                    },
                    FieldDef {
                        name: sym("extra"),
                        ty: FieldTy::Int,
                    },
                ],
            })
            .unwrap();
        let other_profile = EnvProfile::new(&other_types, &preds);
        let other = CheckCache::new();
        let err = load(&other, &other_profile, &path).unwrap_err();
        assert!(!err.to_string().is_empty());
        match err {
            PersistError::FingerprintMismatch { expected, found } => {
                assert_eq!(expected, other_profile.types_tag());
                assert_eq!(found, profile.types_tag());
            }
            unexpected => panic!("expected FingerprintMismatch, got {unexpected:?}"),
        }
        assert_eq!(other.stats().entries, 0, "rejected load must not insert");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_predicate_change_drops_only_touching_entries() {
        // Two independent predicates in one library; entries for each.
        // Changing one drops exactly its entries and keeps the other's.
        let node = sym("PartialNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                }],
            })
            .unwrap();
        let preds_src = |qlist_base: &str| {
            format!(
                "pred qlist(x: PartialNode*) := {qlist_base}
                   | exists u. x -> PartialNode{{next: u}} * qlist(u);
                 pred rcell(x: PartialNode*) := exists u. x -> PartialNode{{next: u}};"
            )
        };
        let mk_preds = |src: &str| {
            let mut env = PredEnv::new();
            for d in parse_predicates(src).unwrap() {
                env.define(d).unwrap();
            }
            env
        };
        let preds_v1 = mk_preds(&preds_src("emp & x == nil"));
        let profile_v1 = EnvProfile::new(&types, &preds_v1);

        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds_v1, Default::default(), &cache);
        assert!(ctx
            .check(
                &list_model_of(node, 2, 1),
                &parse_formula("qlist(x)").unwrap()
            )
            .is_some());
        assert!(ctx
            .check(
                &list_model_of(node, 1, 9),
                &parse_formula("rcell(x)").unwrap()
            )
            .is_some());
        assert_eq!(cache.stats().entries, 2);

        let path = temp_path("partial");
        assert_eq!(save(&cache, &profile_v1, &path).unwrap(), 2);

        // v2: qlist's base case changed; rcell is untouched.
        let preds_v2 = mk_preds(&preds_src("emp & x == x"));
        let profile_v2 = EnvProfile::new(&types, &preds_v2);
        assert_ne!(profile_v1.env_tag(), profile_v2.env_tag());

        let warm = CheckCache::new();
        match load(&warm, &profile_v2, &path) {
            Err(PersistError::PartialStale { kept, dropped }) => {
                assert_eq!((kept, dropped), (1, 1));
            }
            other => panic!("expected PartialStale, got {other:?}"),
        }
        assert_eq!(warm.stats().entries, 1, "the rcell entry survives");

        // The survivor answers rcell queries warm under the new env.
        let warm_ctx = CheckCtx::with_cache(&types, &preds_v2, Default::default(), &warm);
        assert!(warm_ctx
            .check(
                &list_model_of(node, 1, 40),
                &parse_formula("rcell(x)").unwrap()
            )
            .is_some());
        let stats = warm.stats();
        assert_eq!(
            (stats.hits, stats.warm_hits, stats.misses),
            (1, 1, 0),
            "{stats:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_invalidation_follows_predicate_dependencies() {
        // wrap calls through to inner; changing *inner* must drop
        // entries whose formulas only mention wrap.
        let node = sym("DepNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                }],
            })
            .unwrap();
        let src = |inner_base: &str| {
            format!(
                "pred inner(x: DepNode*) := {inner_base}
                   | exists u. x -> DepNode{{next: u}} * inner(u);
                 pred wrap(x: DepNode*) := inner(x);"
            )
        };
        let mk = |s: &str| {
            let mut env = PredEnv::new();
            for d in parse_predicates(s).unwrap() {
                env.define(d).unwrap();
            }
            env
        };
        let v1 = mk(&src("emp & x == nil"));
        let p1 = EnvProfile::new(&types, &v1);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &v1, Default::default(), &cache);
        assert!(ctx
            .check(
                &list_model_of(node, 2, 1),
                &parse_formula("wrap(x)").unwrap()
            )
            .is_some());

        let path = temp_path("deps");
        assert!(save(&cache, &p1, &path).unwrap() > 0);

        let v2 = mk(&src("emp & x == x"));
        let p2 = EnvProfile::new(&types, &v2);
        let warm = CheckCache::new();
        match load(&warm, &p2, &path) {
            Err(PersistError::PartialStale { kept, dropped }) => {
                assert_eq!(kept, 0, "wrap depends on the changed inner");
                assert!(dropped > 0);
            }
            other => panic!("expected PartialStale, got {other:?}"),
        }
        assert_eq!(warm.stats().entries, 0);
        std::fs::remove_file(&path).ok();
    }

    /// `list_model` over an arbitrary node type.
    fn list_model_of(node: Symbol, n: u64, base: u64) -> StackHeapModel {
        let mut heap = Heap::new();
        for i in 0..n {
            let next = if i + 1 < n {
                Val::Addr(Loc::new(base + i + 1))
            } else {
                Val::Nil
            };
            heap.insert(Loc::new(base + i), HeapCell::new(node, vec![next]));
        }
        let mut stack = Stack::new();
        let head = if n == 0 {
            Val::Nil
        } else {
            Val::Addr(Loc::new(base))
        };
        stack.bind(sym("x"), head);
        StackHeapModel::new(stack, heap)
    }

    #[test]
    fn merge_overlapping_snapshots_is_newest_wins_union() {
        // Two caches with one shared key holding *different* synthetic
        // values (impossible via checking, handcrafted here) and one
        // private key each: merging both must produce the three-key
        // union with the newer generation winning the collision.
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let scope = QueryScope {
            env_tag: profile.env_tag(),
            node_budget: 7,
            fuel_slack: 3,
        };
        let key = |text: &str| CacheKey::new(scope, text.to_string());
        let red = |ids: &[u32]| {
            Some(CachedReduction {
                residual: ids.to_vec(),
                inst: Vec::new(),
            })
        };

        let older = CheckCache::new();
        older.store(key("shared"), red(&[1]), &[]);
        older.store(key("only-old"), red(&[2]), &[]);
        let newer = CheckCache::new();
        newer.store(key("shared"), red(&[9]), &[]);
        newer.store(key("only-new"), red(&[3]), &[]);

        let dir = std::env::temp_dir();
        let old_path = dir.join(format!("sling-merge-old-{}.snap", std::process::id()));
        let new_path = dir.join(format!("sling-merge-new-{}.snap", std::process::id()));
        save_at(&older, &profile, &old_path, 100).unwrap();
        save_at(&newer, &profile, &new_path, 200).unwrap();

        // Merge in both orders: the result must be identical.
        for order in [[&old_path, &new_path], [&new_path, &old_path]] {
            let live = CheckCache::new();
            let mut totals = MergeStats::default();
            for p in order {
                let stats = merge(&live, &profile, p).unwrap();
                totals.merged += stats.merged;
                totals.skipped += stats.skipped;
            }
            assert_eq!(live.stats().entries, 3, "union of both key sets");
            // 4 entries offered; every offer is accounted either way.
            // Old-then-new replaces the shared key (counted merged);
            // new-then-old skips the older shared offer.
            assert_eq!(totals.merged + totals.skipped, 4);
            assert!(totals.merged >= 3, "{totals:?}");
            let winner = live.lookup(&key("shared")).expect("shared key present");
            assert_eq!(
                winner.expect("positive verdict").residual,
                vec![9],
                "the newer generation must win the collision"
            );
        }
        std::fs::remove_file(&old_path).ok();
        std::fs::remove_file(&new_path).ok();
    }

    #[test]
    fn generation_stamps_are_strictly_monotonic_and_respect_floors() {
        let a = generation_stamp(0);
        let b = generation_stamp(0);
        assert!(b > a, "back-to-back stamps must order strictly");
        // A floor from a future-stamped sibling: the stamp lands above
        // it, and later stamps never rewind below the raised watermark.
        let future = b + (1 << 20);
        let c = generation_stamp(future);
        assert!(c > future);
        let d = generation_stamp(0);
        assert!(d > c, "the counter never rewinds after a high floor");
    }

    #[test]
    fn same_millisecond_snapshots_merge_deterministically() {
        // Two snapshots stamped back-to-back — the same wall-clock
        // millisecond in practice — used to receive equal generations,
        // and equal generations merge order-dependently (the colliding
        // offer is skipped, so whichever snapshot merged first won).
        // The per-process sub-counter must break the tie: both merge
        // orders agree that the later save wins.
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let scope = QueryScope {
            env_tag: profile.env_tag(),
            node_budget: 7,
            fuel_slack: 3,
        };
        let key = |text: &str| CacheKey::new(scope, text.to_string());
        let red = |ids: &[u32]| {
            Some(CachedReduction {
                residual: ids.to_vec(),
                inst: Vec::new(),
            })
        };

        let first = CheckCache::new();
        first.store(key("shared"), red(&[1]), &[]);
        let second = CheckCache::new();
        second.store(key("shared"), red(&[9]), &[]);

        let g1 = generation_stamp(0);
        let g2 = generation_stamp(0);
        assert!(g2 > g1, "sub-counter must break the wall-clock tie");
        assert_ne!(g1 >> GENERATION_SUB_BITS, 0, "wall component present");

        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("sling-samems-1-{}.snap", std::process::id()));
        let p2 = dir.join(format!("sling-samems-2-{}.snap", std::process::id()));
        save_at(&first, &profile, &p1, g1).unwrap();
        save_at(&second, &profile, &p2, g2).unwrap();

        for order in [[&p1, &p2], [&p2, &p1]] {
            let live = CheckCache::new();
            for p in order {
                merge(&live, &profile, p).unwrap();
            }
            let winner = live.lookup(&key("shared")).expect("shared key present");
            assert_eq!(
                winner.expect("positive verdict").residual,
                vec![9],
                "the later save must win regardless of merge order"
            );
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn merge_never_replaces_live_entries() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let scope = QueryScope {
            env_tag: profile.env_tag(),
            node_budget: 1,
            fuel_slack: 1,
        };
        let key = CacheKey::new(scope, "live-vs-snapshot".to_string());
        let snapshot_cache = CheckCache::new();
        snapshot_cache.store(
            key.clone(),
            Some(CachedReduction {
                residual: vec![5],
                inst: Vec::new(),
            }),
            &[],
        );
        let path = temp_path("live-wins");
        save_at(&snapshot_cache, &profile, &path, u64::MAX - 1).unwrap();

        // The live cache computed its own verdict for the same key.
        let live = CheckCache::new();
        live.store(
            key.clone(),
            Some(CachedReduction {
                residual: vec![8],
                inst: Vec::new(),
            }),
            &[],
        );
        let stats = merge(&live, &profile, &path).unwrap();
        assert_eq!((stats.merged, stats.skipped), (0, 1));
        let kept = live.lookup(&key).expect("still present");
        assert_eq!(
            kept.expect("positive").residual,
            vec![8],
            "a live-computed entry beats any snapshot generation"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_respects_capacity_without_evicting() {
        use crate::SHARD_COUNT;
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        for n in 0..(4 * SHARD_COUNT as u64) {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let path = temp_path("merge-capacity");
        let written = save(&cache, &profile, &path).unwrap();

        let tiny = CheckCache::with_capacity(SHARD_COUNT); // one entry per shard
        let stats = merge(&tiny, &profile, &path).unwrap();
        assert_eq!(stats.merged, tiny.stats().entries);
        assert!(stats.merged < written);
        assert_eq!(stats.merged + stats.skipped, written);
        assert_eq!(
            tiny.stats().evictions,
            0,
            "merging must never evict to make room"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        for n in 0..3 {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let path = temp_path("corrupt");
        save(&cache, &profile, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one body byte: checksum must catch it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        std::fs::write(&path, &flipped).unwrap();
        let fresh = CheckCache::new();
        assert!(matches!(
            load(&fresh, &profile, &path),
            Err(PersistError::Corrupted(_))
        ));
        assert_eq!(fresh.stats().entries, 0, "rejected load must not insert");
        assert!(matches!(
            merge(&fresh, &profile, &path),
            Err(PersistError::Corrupted(_))
        ));

        // Truncations anywhere must error, never panic — through both
        // entry points.
        for cut in [0, 3, 9, 13, 19, 27, 35, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                load(&CheckCache::new(), &profile, &path).is_err(),
                "truncation at {cut} must be rejected"
            );
            assert!(
                merge(&CheckCache::new(), &profile, &path).is_err(),
                "merge truncation at {cut} must be rejected"
            );
        }

        // Not a snapshot at all.
        std::fs::write(&path, b"definitely not a cache").unwrap();
        assert!(matches!(
            load(&CheckCache::new(), &profile, &path),
            Err(PersistError::Corrupted(_))
        ));

        // A past or future format version is refused, not misparsed.
        for v in [1u32, 99] {
            let mut versioned = good.clone();
            versioned[8..12].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &versioned).unwrap();
            assert!(matches!(
                load(&CheckCache::new(), &profile, &path),
                Err(PersistError::UnsupportedVersion(got)) if got == v
            ));
        }

        // A missing file surfaces as Io.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load(&CheckCache::new(), &profile, &path),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn stale_temp_files_are_swept_on_save_and_load() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = ctx.check(&list_model(2, 1), &f);

        let path = temp_path("sweep");
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let parent = path.parent().unwrap().to_path_buf();
        // A temp stranded by a "crashed" save of a dead process (a pid
        // this test does not have, aged past the staleness window),
        // plus a *fresh* other-pid temp (a live sibling mid-save) and
        // one belonging to this process (a concurrent save mid-write) —
        // both of which must survive.
        let stale = parent.join(format!("{stem}.tmp.999999999.0"));
        let fresh = parent.join(format!("{stem}.tmp.999999998.0"));
        let own = parent.join(format!("{stem}.tmp.{}.7", std::process::id()));
        let plant_stale = || {
            std::fs::write(&stale, b"half-written snapshot").unwrap();
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&stale)
                .unwrap();
            let crashed_at = std::time::SystemTime::now() - 2 * super::STALE_TEMP_AGE;
            file.set_times(std::fs::FileTimes::new().set_modified(crashed_at))
                .unwrap();
        };
        plant_stale();
        std::fs::write(&fresh, b"in-flight sibling snapshot").unwrap();
        std::fs::write(&own, b"in-flight snapshot").unwrap();

        save(&cache, &profile, &path).unwrap();
        assert!(
            !stale.exists(),
            "a successful save must sweep aged dead-process temps"
        );
        assert!(fresh.exists(), "fresh other-pid temps may be mid-save");
        assert!(own.exists(), "own-pid temps are in flight, not stale");

        plant_stale();
        let restored = CheckCache::new();
        assert!(load(&restored, &profile, &path).unwrap() > 0);
        assert!(!stale.exists(), "load must sweep aged temps too");
        assert!(fresh.exists());
        assert!(own.exists());

        std::fs::remove_file(&fresh).ok();
        std::fs::remove_file(&own).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_only_retained_entries() {
        // Loading into a near-capacity cache keeps what fits; the
        // returned count must reflect what was retained, not the file.
        use crate::SHARD_COUNT;
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        for n in 0..(4 * SHARD_COUNT as u64) {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let path = temp_path("capacity");
        let written = save(&cache, &profile, &path).unwrap();

        let tiny = CheckCache::with_capacity(SHARD_COUNT); // one entry per shard
        let loaded = load(&tiny, &profile, &path).unwrap();
        assert_eq!(loaded, tiny.stats().entries);
        assert!(
            loaded < written,
            "a tiny cache cannot retain the whole snapshot ({loaded} vs {written})"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_filters_by_environment() {
        // One shared cache, two environments: a snapshot for one env
        // contains only that env's entries.
        let (types, preds_real) = envs();
        let mut preds_other = PredEnv::new();
        for d in parse_predicates("pred plist(x: PersistNode*) := emp & x == nil;").unwrap() {
            preds_other.define(d).unwrap();
        }
        let cache = CheckCache::new();
        let a = CheckCtx::with_cache(&types, &preds_real, Default::default(), &cache);
        let b = CheckCtx::with_cache(&types, &preds_other, Default::default(), &cache);
        let f = parse_formula("plist(x)").unwrap();
        let _ = a.check(&list_model(2, 1), &f);
        let _ = b.check(&list_model(2, 1), &f);
        assert_eq!(cache.stats().entries, 2);

        let profile_a = EnvProfile::new(&types, &preds_real);
        let path = temp_path("filter");
        assert_eq!(save(&cache, &profile_a, &path).unwrap(), 1);
        let only_a = CheckCache::new();
        assert_eq!(load(&only_a, &profile_a, &path).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }
}
