//! The memoizing entailment cache.
//!
//! SLING's inference loop asks the model checker the same kind of
//! question over and over: "does this sub-heap satisfy this predicate
//! formula?" Sub-heaps recur constantly — the same list segment shows up
//! at entry and exit, across loop iterations, and across the many target
//! functions of a batch analysis. [`CheckCache`] memoizes the reduction
//! `s, h ⊩ F ⇝ h', ι` keyed on a *canonical form* of the
//! `(sub-heap shape, formula)` pair, so a repeated query — even one whose
//! concrete heap addresses differ — is answered without re-running the
//! search.
//!
//! # Canonicalization
//!
//! The key must be insensitive to the accidents of a particular run:
//!
//! * **Addresses** are renamed to dense canonical ids by a breadth-first
//!   walk of the heap rooted at the formula's free variables (in name
//!   order); unreached cells follow in address order. Two isomorphic
//!   sub-heaps therefore produce the same key, and the checker's verdict
//!   transfers because the reduction judgment is invariant under
//!   bijective renaming of addresses.
//! * **Bound variables** of the formula are renamed to positional names,
//!   so `∃u3. sll(u3)` and `∃u7. sll(u7)` share an entry.
//! * Pointers that leave the sub-heap (boundary pointers) get their own
//!   canonical ids in first-encounter order, preserving their equality
//!   pattern without leaking raw addresses into the key.
//!
//! Cached entries store the residual domain and existential
//! instantiation in canonical space; a hit rehydrates them through the
//! querying model's own renaming.
//!
//! # Concurrency
//!
//! The cache is sharded: entries are distributed over [`SHARD_COUNT`]
//! independent `Mutex<HashMap>` shards selected by the key's precomputed
//! fingerprint, so concurrent checker threads (a parallel engine batch)
//! contend only when they touch the same shard. Hit/miss counters are
//! per-shard atomics; [`CheckCache::stats`] sums them, so totals stay
//! exact under any interleaving.
//!
//! # Persistence
//!
//! Because canonical keys are stable across processes, a cache can be
//! snapshotted to disk and reloaded by a later run — see
//! [`crate::persist`]. Entries restored that way are *warm*; hits on
//! them are reported separately in [`CacheStats::warm_hits`].
//!
//! # Examples
//!
//! Two isomorphic models share one cache entry — the second query is
//! answered without re-running the search:
//!
//! ```
//! use sling_checker::{CheckCache, CheckCtx};
//! use sling_logic::{parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv,
//!                   StructDef, Symbol, TypeEnv};
//! use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};
//!
//! let node = Symbol::intern("MNode");
//! let mut types = TypeEnv::new();
//! types.define(StructDef {
//!     name: node,
//!     fields: vec![FieldDef { name: Symbol::intern("next"), ty: FieldTy::Ptr(node) }],
//! })?;
//! let mut preds = PredEnv::new();
//! for d in parse_predicates(
//!     "pred mlist(x: MNode*) := emp & x == nil | exists u. x -> MNode{next: u} * mlist(u);",
//! )? {
//!     preds.define(d)?;
//! }
//!
//! // A one-cell list headed by `x`, at a caller-chosen address.
//! let model = |base: u64| {
//!     let mut heap = Heap::new();
//!     heap.insert(Loc::new(base), HeapCell::new(node, vec![Val::Nil]));
//!     let mut stack = Stack::new();
//!     stack.bind(Symbol::intern("x"), Val::Addr(Loc::new(base)));
//!     StackHeapModel::new(stack, heap)
//! };
//!
//! let cache = CheckCache::new();
//! let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
//! let f = parse_formula("mlist(x)")?;
//! assert!(ctx.check(&model(1), &f).is_some()); // cold: runs the search
//! assert!(ctx.check(&model(9), &f).is_some()); // isomorphic: cache hit
//! assert_eq!(cache.stats().hits, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sling_logic::{Expr, Subst, SymHeap, Symbol};
use sling_models::{Loc, StackHeapModel, Val};

use crate::check::Reduction;
use crate::inst::Instantiation;

/// Point-in-time counters of a [`CheckCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries answered by entries loaded from a persisted cache file
    /// (see [`crate::persist`]) — the warm-start subset of `hits`.
    pub warm_hits: u64,
    /// Queries that ran the full search (and seeded the cache).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Entries evicted to stay inside the configured capacity.
    pub evictions: u64,
    /// Approximate bytes currently held by stored entries (key text,
    /// cached reductions, and per-entry bookkeeping).
    pub resident_bytes: u64,
    /// Local misses answered by the remote cache tier (a subset of
    /// `misses`: the local lookup misses first, then the remote tier
    /// answers). Zero when no remote cache is wired.
    pub remote_hits: u64,
    /// Local misses the remote tier was asked about and did not have.
    pub remote_misses: u64,
    /// Remote lookups skipped or abandoned because the tier was
    /// degraded (server dead, slow, or in reconnect backoff).
    pub remote_degraded: u64,
    /// Cumulative nanoseconds spent on remote round trips (successful
    /// and failed fetches; queued write-behind publishes are free).
    pub remote_nanos: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The counter movement since an `earlier` snapshot of the same
    /// cache (entry counts and resident bytes are absolute, not
    /// differenced).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            warm_hits: self.warm_hits.saturating_sub(earlier.warm_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
            evictions: self.evictions.saturating_sub(earlier.evictions),
            resident_bytes: self.resident_bytes,
            remote_hits: self.remote_hits.saturating_sub(earlier.remote_hits),
            remote_misses: self.remote_misses.saturating_sub(earlier.remote_misses),
            remote_degraded: self.remote_degraded.saturating_sub(earlier.remote_degraded),
            remote_nanos: self.remote_nanos.saturating_sub(earlier.remote_nanos),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}%), {} entries",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.entries
        )?;
        if self.warm_hits > 0 {
            write!(f, ", {} warm", self.warm_hits)?;
        }
        if self.evictions > 0 {
            write!(f, ", {} evicted", self.evictions)?;
        }
        if self.remote_hits + self.remote_misses > 0 {
            write!(
                f,
                ", {} remote hits / {} remote lookups",
                self.remote_hits,
                self.remote_hits + self.remote_misses
            )?;
        }
        if self.remote_degraded > 0 {
            write!(f, ", {} degraded", self.remote_degraded)?;
        }
        Ok(())
    }
}

/// Number of independent shards a [`CheckCache`] distributes its entries
/// over. Concurrent checker threads contend only when two lookups land on
/// the same shard.
pub const SHARD_COUNT: usize = 16;

/// FNV-1a over a byte slice — the one hash used for every fingerprint
/// in this crate (cache keys, environment fingerprints, snapshot
/// checksums), so the constants live in exactly one place.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a fold from an intermediate state.
pub(crate) fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything outside the `(model, formula)` pair that a verdict depends
/// on: the environment fingerprint and the search limits (a
/// budget-truncated "no" must not answer a full-budget query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct QueryScope {
    /// Fingerprint of the `(TypeEnv, PredEnv)` pair.
    pub(crate) env_tag: u64,
    /// Search-node budget of the querying context.
    pub(crate) node_budget: u64,
    /// Unfolding slack of the querying context.
    pub(crate) fuel_slack: u32,
}

/// The cache key: the query scope plus the canonical form of the
/// `(model, formula)` pair, with a FNV-1a fingerprint over both
/// precomputed once at canonicalization. The fingerprint picks the shard
/// and feeds the hash table directly (via a pass-through hasher), so the
/// canonical text is never re-hashed on probes; equality still compares
/// the full text, so fingerprint collisions cannot alias entries. The
/// text is refcounted (`Arc<str>`), so cloning a key — the LRU stamp
/// index holds one clone per entry — costs a pointer bump, not a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CacheKey {
    pub(crate) scope: QueryScope,
    fingerprint: u64,
    pub(crate) text: std::sync::Arc<str>,
}

impl CacheKey {
    pub(crate) fn new(scope: QueryScope, text: String) -> CacheKey {
        let mut h = fnv1a(&scope.env_tag.to_le_bytes());
        h = fnv1a_extend(h, &scope.node_budget.to_le_bytes());
        h = fnv1a_extend(h, &scope.fuel_slack.to_le_bytes());
        h = fnv1a_extend(h, text.as_bytes());
        CacheKey {
            scope,
            fingerprint: h,
            text: text.into(),
        }
    }

    /// The shard this key belongs to. Uses high fingerprint bits, leaving
    /// the low bits (used by the hash table's bucket index) independent.
    fn shard(&self) -> usize {
        (self.fingerprint >> 48) as usize % SHARD_COUNT
    }
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

/// Hasher that passes the precomputed key fingerprint straight through.
#[derive(Debug, Default, Clone)]
struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-fingerprint keys (unused in practice).
        self.0 = fnv1a_extend(self.0, bytes);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type FingerprintBuild = BuildHasherDefault<FingerprintHasher>;

/// Snapshot-generation stamp of entries computed live in this process.
/// Live entries always beat snapshot entries in newest-generation-wins
/// collision resolution ([`CheckCache::merge_warm`]).
pub(crate) const GEN_LIVE: u64 = u64::MAX;

/// One stored verdict plus its provenance: entries loaded from a
/// persisted cache file are *warm* and counted separately on hits.
#[derive(Debug, Clone)]
struct Entry {
    value: Option<CachedReduction>,
    warm: bool,
    /// Last-access stamp from the shard clock; the LRU victim is the
    /// entry with the smallest stamp.
    stamp: u64,
    /// Snapshot generation this entry was restored from ([`GEN_LIVE`]
    /// for entries computed in this process), for newest-wins merging.
    gen: u64,
    /// Predicates the entry's formula mentions directly — persistence
    /// metadata, so a snapshot can invalidate per predicate.
    preds: Box<[Symbol]>,
    /// Approximate resident size, so removal accounting is exact.
    bytes: u64,
}

/// Fixed per-entry bookkeeping cost added to the measured payload when
/// accounting [`CacheStats::resident_bytes`].
const ENTRY_OVERHEAD: u64 = (std::mem::size_of::<CacheKey>() + std::mem::size_of::<Entry>()) as u64;

fn entry_bytes(key: &CacheKey, value: &Option<CachedReduction>, preds: &[Symbol]) -> u64 {
    let payload = match value {
        None => 0,
        Some(red) => {
            red.residual.len() * std::mem::size_of::<u32>()
                + red.inst.len() * std::mem::size_of::<(CanonName, CanonVal)>()
        }
    };
    ENTRY_OVERHEAD + key.text.len() as u64 + payload as u64 + std::mem::size_of_val(preds) as u64
}

/// The mutable interior of one shard: the map, its access clock, the
/// stamp-ordered LRU index, and the resident-byte ledger — everything
/// that moves together under the shard lock.
#[derive(Debug, Default)]
struct ShardMap {
    entries: HashMap<CacheKey, Entry, FingerprintBuild>,
    /// Access order: stamp → key. Stamps are unique (the clock only
    /// goes up), so the first entry is exactly the least recently used
    /// — eviction is O(log n) and unbiased at every shard size. Key
    /// clones here are pointer bumps (`CacheKey.text` is `Arc<str>`).
    by_stamp: BTreeMap<u64, CacheKey>,
    /// Monotonic per-shard access clock; every hit and insert stamps
    /// the touched entry, so LRU selection needs no global ordering.
    clock: u64,
    resident_bytes: u64,
}

impl ShardMap {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let entry = self.entries.remove(key)?;
        self.by_stamp.remove(&entry.stamp);
        self.resident_bytes -= entry.bytes;
        Some(entry)
    }

    fn insert(&mut self, key: CacheKey, mut entry: Entry) {
        let stamp = self.tick();
        entry.stamp = stamp;
        entry.bytes = entry_bytes(&key, &entry.value, &entry.preds);
        self.resident_bytes += entry.bytes;
        self.by_stamp.insert(stamp, key.clone());
        if let Some(old) = self.entries.insert(key, entry) {
            self.by_stamp.remove(&old.stamp);
            self.resident_bytes -= old.bytes;
        }
    }

    /// Refreshes an entry's access stamp and returns its verdict and
    /// warmth, if present.
    fn touch(&mut self, key: &CacheKey) -> Option<(Option<CachedReduction>, bool)> {
        let stamp = self.tick();
        let entry = self.entries.get_mut(key)?;
        let old = std::mem::replace(&mut entry.stamp, stamp);
        let result = (entry.value.clone(), entry.warm);
        self.by_stamp.remove(&old);
        self.by_stamp.insert(stamp, key.clone());
        Some(result)
    }

    /// Evicts the least-recently-used entry — the stamp index makes the
    /// choice exact at any shard size, not a sampled approximation.
    fn evict_lru(&mut self) -> bool {
        let victim = self.by_stamp.first_key_value().map(|(_, key)| key.clone());
        match victim {
            Some(key) => self.remove(&key).is_some(),
            None => false,
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.by_stamp.clear();
        self.resident_bytes = 0;
    }
}

/// One independent slice of the cache: its own map and counters.
#[derive(Debug, Default)]
struct Shard {
    map: Mutex<ShardMap>,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A shared, thread-safe memo table for checker reductions, sharded for
/// concurrent use.
///
/// Create one per [`crate::CheckCtx`] scope (an engine, a batch run) and
/// pass it via [`crate::CheckCtx::with_cache`]. Both satisfiable and
/// unsatisfiable verdicts are cached.
#[derive(Debug)]
pub struct CheckCache {
    shards: Vec<Shard>,
    shard_capacity: usize,
    /// Highest snapshot generation ever absorbed (via load or merge).
    /// Saves stamp strictly above it, so a cache that folded in a
    /// future-stamped sibling (clock skew) still writes snapshots that
    /// win newest-generation collisions with it.
    max_generation: AtomicU64,
    /// Remote-tier observability, kept on the cache (not the client) so
    /// the counters ride the existing [`CacheStats`] snapshot/delta
    /// plumbing — per-request deltas, batch totals, and the wire codec
    /// all come for free.
    remote: RemoteCounters,
}

/// Counters for the remote cache tier ([`crate::remote::RemoteCache`]).
#[derive(Debug, Default)]
struct RemoteCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    degraded: AtomicU64,
    nanos: AtomicU64,
}

impl Default for CheckCache {
    fn default() -> CheckCache {
        CheckCache::new()
    }
}

/// Default bound on stored entries; beyond it new results are computed
/// but not retained (the working set of a corpus run stays far below).
const DEFAULT_CAPACITY: usize = 1 << 20;

impl CheckCache {
    /// An empty cache with the default capacity.
    pub fn new() -> CheckCache {
        CheckCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache retaining roughly `capacity` entries. The bound is
    /// enforced per shard ([`SHARD_COUNT`] shards of
    /// `capacity / SHARD_COUNT` entries each, rounded up so small
    /// capacities still cache), so the retained total can overshoot a
    /// capacity that is not a multiple of the shard count by at most
    /// `SHARD_COUNT - 1` entries.
    pub fn with_capacity(capacity: usize) -> CheckCache {
        CheckCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            shard_capacity: capacity.div_ceil(SHARD_COUNT),
            max_generation: AtomicU64::new(0),
            remote: RemoteCounters::default(),
        }
    }

    /// Records the outcome of one remote-tier round trip; `nanos` is
    /// the wall time the fetch took (hit or miss). Called from the
    /// check hot path, so these are plain relaxed counter bumps.
    pub(crate) fn note_remote_hit(&self, nanos: u64) {
        self.remote.hits.fetch_add(1, Ordering::Relaxed);
        self.remote.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// See [`CheckCache::note_remote_hit`].
    pub(crate) fn note_remote_miss(&self, nanos: u64) {
        self.remote.misses.fetch_add(1, Ordering::Relaxed);
        self.remote.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records a remote lookup skipped or abandoned because the tier is
    /// degraded; `nanos` is nonzero when a round trip was attempted and
    /// failed partway (timeout, reset).
    pub(crate) fn note_remote_degraded(&self, nanos: u64) {
        self.remote.degraded.fetch_add(1, Ordering::Relaxed);
        self.remote.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Highest snapshot generation this cache has absorbed (0 when it
    /// never loaded or merged a snapshot). [`crate::persist::save`]
    /// stamps new snapshots strictly above it.
    pub(crate) fn max_generation(&self) -> u64 {
        self.max_generation.load(Ordering::Relaxed)
    }

    fn note_generation(&self, gen: u64) {
        if gen != GEN_LIVE {
            self.max_generation.fetch_max(gen, Ordering::Relaxed);
        }
    }

    /// The configured entry bound (total across shards).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARD_COUNT
    }

    /// Current counters, summed over every shard. Hit/miss totals are
    /// exact under concurrent use; `entries` and `resident_bytes` are
    /// point-in-time sums.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.warm_hits += shard.warm_hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.evictions += shard.evictions.load(Ordering::Relaxed);
            let map = shard.map.lock().expect("cache lock");
            stats.entries += map.entries.len() as u64;
            stats.resident_bytes += map.resident_bytes;
        }
        stats.remote_hits = self.remote.hits.load(Ordering::Relaxed);
        stats.remote_misses = self.remote.misses.load(Ordering::Relaxed);
        stats.remote_degraded = self.remote.degraded.load(Ordering::Relaxed);
        stats.remote_nanos = self.remote.nanos.load(Ordering::Relaxed);
        stats
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.lock().expect("cache lock").clear();
        }
    }

    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Option<CachedReduction>> {
        let shard = &self.shards[key.shard()];
        let found = shard.map.lock().expect("cache lock").touch(key);
        match &found {
            Some((_, warm)) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                if *warm {
                    shard.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
            }
        };
        found.map(|(value, _)| value)
    }

    /// Stores a freshly computed verdict, evicting the shard's
    /// least-recently-used entry first when the shard is full. `preds`
    /// is the formula's direct predicate-mention set, kept so the entry
    /// can be persisted with per-predicate invalidation metadata.
    pub(crate) fn store(&self, key: CacheKey, value: Option<CachedReduction>, preds: &[Symbol]) {
        let shard = &self.shards[key.shard()];
        let mut map = shard.map.lock().expect("cache lock");
        if map.entries.len() >= self.shard_capacity && !map.entries.contains_key(&key) {
            if !map.evict_lru() {
                return; // zero-capacity shard: nothing to evict into
            }
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(
            key,
            Entry {
                value,
                warm: false,
                stamp: 0,
                gen: GEN_LIVE,
                preds: preds.into(),
                bytes: 0,
            },
        );
    }

    /// Inserts an entry loaded from a persisted snapshot; hits on it
    /// are counted as warm starts ([`CacheStats::warm_hits`]). Warm
    /// inserts never evict live entries: the entry is dropped when its
    /// shard is at capacity. Returns whether the entry was actually
    /// retained, so loaders can report the restored count honestly.
    pub(crate) fn store_warm(
        &self,
        key: CacheKey,
        value: Option<CachedReduction>,
        preds: &[Symbol],
        gen: u64,
    ) -> bool {
        self.note_generation(gen);
        let shard = &self.shards[key.shard()];
        let mut map = shard.map.lock().expect("cache lock");
        if map.entries.len() >= self.shard_capacity && !map.entries.contains_key(&key) {
            return false;
        }
        map.insert(
            key,
            Entry {
                value,
                warm: true,
                stamp: 0,
                gen,
                preds: preds.into(),
                bytes: 0,
            },
        );
        true
    }

    /// [`CheckCache::store_warm`] with newest-generation-wins collision
    /// resolution, for folding sibling snapshots into a live cache: an
    /// existing entry with a generation at least `gen` (including any
    /// live-computed entry) is kept, an older one is replaced. Returns
    /// whether the incoming entry was retained.
    pub(crate) fn merge_warm(
        &self,
        key: CacheKey,
        value: Option<CachedReduction>,
        preds: &[Symbol],
        gen: u64,
    ) -> bool {
        self.note_generation(gen);
        let shard = &self.shards[key.shard()];
        let mut map = shard.map.lock().expect("cache lock");
        match map.entries.get(&key) {
            Some(existing) if existing.gen >= gen => return false,
            Some(_) => {}
            None if map.entries.len() >= self.shard_capacity => return false,
            None => {}
        }
        map.insert(
            key,
            Entry {
                value,
                warm: true,
                stamp: 0,
                gen,
                preds: preds.into(),
                bytes: 0,
            },
        );
        true
    }

    /// Snapshots every stored entry whose scope carries `env_tag`, for
    /// persistence. Shards are locked one at a time, so the snapshot is
    /// per-shard consistent (exact when no checker runs concurrently).
    pub(crate) fn entries_for(&self, env_tag: u64) -> Vec<ExportedEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock().expect("cache lock");
            for (key, entry) in map.entries.iter() {
                if key.scope.env_tag == env_tag {
                    out.push(ExportedEntry {
                        key: key.clone(),
                        value: entry.value.clone(),
                        preds: entry.preds.to_vec(),
                    });
                }
            }
        }
        out
    }
}

/// One cache entry lifted out for persistence: the key, the verdict,
/// and the predicate-mention metadata the snapshot needs for partial
/// invalidation.
pub(crate) struct ExportedEntry {
    pub(crate) key: CacheKey,
    pub(crate) value: Option<CachedReduction>,
    pub(crate) preds: Vec<Symbol>,
}

/// A value in canonical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CanonVal {
    /// The null pointer.
    Nil,
    /// An integer (kept verbatim: formulas may constrain it).
    Int(i64),
    /// The `id`-th cell of the canonical heap enumeration.
    InHeap(u32),
    /// The `id`-th distinct pointer that leaves the sub-heap.
    Dangling(u32),
}

/// How a cached instantiation names a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CanonName {
    /// Positional index into the formula's binder list.
    Binder(u32),
    /// A free variable of the formula (part of the key, so stable).
    Free(Symbol),
}

/// One memoized reduction, expressed in canonical space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedReduction {
    pub(crate) residual: Vec<u32>,
    pub(crate) inst: Vec<(CanonName, CanonVal)>,
}

/// The canonical form of one `(model, formula)` query: the cache key
/// plus the renamings needed to translate a stored verdict back into
/// the model's concrete address space.
pub(crate) struct CanonicalQuery {
    /// The cache key.
    pub(crate) key: CacheKey,
    /// Predicates the formula mentions directly (sorted, unique) —
    /// stored with the entry so persistence can invalidate per
    /// predicate.
    pub(crate) preds: Vec<Symbol>,
    binders: Vec<Symbol>,
    loc_ids: BTreeMap<Loc, u32>,
    id_locs: Vec<Loc>,
    dangling_ids: BTreeMap<Loc, u32>,
    id_dangling: Vec<Loc>,
}

/// A stable fingerprint of the checking environments, mixed into cache
/// keys so a [`CheckCache`] shared between contexts with *different*
/// environments can never exchange verdicts. Both environments are
/// `BTreeMap`-backed, so their `Debug` output is deterministic for equal
/// contents. Long-lived engines compute this once at build time and pass
/// it via [`crate::CheckCtx`]'s `env_tag` field.
pub fn env_fingerprint(types: &sling_logic::TypeEnv, preds: &sling_logic::PredEnv) -> u64 {
    let text = format!("{types:?}\u{1}{preds:?}");
    fnv1a(text.as_bytes())
}

/// Predicates a formula mentions directly (sorted, unique).
pub(crate) fn formula_pred_mentions(f: &SymHeap) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = f
        .spatial
        .iter()
        .filter_map(|atom| match atom {
            sling_logic::SpatialAtom::Pred { name, .. } => Some(*name),
            sling_logic::SpatialAtom::PointsTo { .. } => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A structured fingerprint of the checking environments: the overall
/// tag ([`env_fingerprint`], mixed into every cache key), a tag of the
/// type environment alone, and one fingerprint *per predicate
/// definition* together with the predicates that definition references.
///
/// The per-predicate table is what lets snapshot loading invalidate
/// partially: an entry's verdict depends only on the type environment
/// and the definitions of the predicates its formula (transitively)
/// mentions, so an entry survives a predicate-library edit whenever
/// none of those definitions changed — see
/// [`crate::persist::load`]. Long-lived engines build one profile at
/// construction and pass it to every [`crate::persist`] call.
#[derive(Debug, Clone)]
pub struct EnvProfile {
    env_tag: u64,
    types_tag: u64,
    preds: BTreeMap<Symbol, PredInfo>,
}

#[derive(Debug, Clone)]
struct PredInfo {
    /// FNV-1a over the definition's `Debug` form (name, params, cases).
    fingerprint: u64,
    /// Other predicates the definition's cases mention (its direct
    /// dependencies; self-recursion is implied and omitted).
    deps: Vec<Symbol>,
}

impl EnvProfile {
    /// Profiles a `(TypeEnv, PredEnv)` pair.
    pub fn new(types: &sling_logic::TypeEnv, preds: &sling_logic::PredEnv) -> EnvProfile {
        let mut table = BTreeMap::new();
        for def in preds.iter() {
            let fingerprint = fnv1a(format!("{def:?}").as_bytes());
            let mut deps: Vec<Symbol> = def
                .cases
                .iter()
                .flat_map(formula_pred_mentions)
                .filter(|name| *name != def.name)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            table.insert(def.name, PredInfo { fingerprint, deps });
        }
        EnvProfile {
            env_tag: env_fingerprint(types, preds),
            types_tag: fnv1a(format!("{types:?}").as_bytes()),
            preds: table,
        }
    }

    /// The overall environment tag ([`env_fingerprint`]) — the value
    /// mixed into every cache key computed under this environment.
    pub fn env_tag(&self) -> u64 {
        self.env_tag
    }

    /// Fingerprint of the type environment alone. Snapshots whose type
    /// environments differ are rejected wholesale: struct layouts feed
    /// every verdict.
    pub fn types_tag(&self) -> u64 {
        self.types_tag
    }

    /// The per-predicate fingerprint table in name order.
    pub(crate) fn pred_table(&self) -> impl Iterator<Item = (Symbol, u64)> + '_ {
        self.preds
            .iter()
            .map(|(name, info)| (*name, info.fingerprint))
    }

    /// The per-predicate fingerprint table in name order, as owned
    /// pairs — the v2 snapshot key material, exposed for the remote
    /// cache tier: write-through clients attach these fingerprints to
    /// published entries and validate fetched ones against them
    /// ([`EnvProfile::closure_matches`]).
    pub fn pred_fingerprints(&self) -> Vec<(String, u64)> {
        self.preds
            .iter()
            .map(|(name, info)| (name.as_str().to_string(), info.fingerprint))
            .collect()
    }

    /// Whether an entry that directly mentions the predicates named in
    /// `mentions`, computed under an environment that recorded
    /// `recorded` per-predicate fingerprints, is still valid under this
    /// profile — the remote-tier twin of the snapshot loader's
    /// transitive closure check (`EnvProfile::closure_unchanged`
    /// semantics over owned name/fingerprint pairs).
    pub fn closure_matches(&self, recorded: &[(String, u64)], mentions: &[String]) -> bool {
        let old: BTreeMap<Symbol, u64> = recorded
            .iter()
            .map(|(name, fp)| (Symbol::intern(name), *fp))
            .collect();
        let mentions: Vec<Symbol> = mentions.iter().map(|name| Symbol::intern(name)).collect();
        self.closure_unchanged(&old, &mentions)
    }

    /// Whether an entry that directly mentions `mentions` is still
    /// valid when the saving environment recorded `old` fingerprints:
    /// every predicate in the transitive dependency closure must exist
    /// in *both* environments with the same fingerprint. (An unchanged
    /// predicate has unchanged dependencies, so walking this profile's
    /// dependency graph visits exactly the closure the entry was
    /// computed under — or hits a changed predicate first and bails.)
    pub(crate) fn closure_unchanged(
        &self,
        old: &BTreeMap<Symbol, u64>,
        mentions: &[Symbol],
    ) -> bool {
        let mut stack: Vec<Symbol> = mentions.to_vec();
        let mut seen: std::collections::BTreeSet<Symbol> = stack.iter().copied().collect();
        while let Some(name) = stack.pop() {
            let Some(info) = self.preds.get(&name) else {
                return false; // predicate removed or renamed
            };
            if old.get(&name) != Some(&info.fingerprint) {
                return false; // definition changed (or absent at save)
            }
            for dep in &info.deps {
                if seen.insert(*dep) {
                    stack.push(*dep);
                }
            }
        }
        true
    }
}

impl CanonicalQuery {
    /// Canonicalizes a query. `scope` carries everything outside the
    /// `(model, formula)` pair that the verdict depends on (environment
    /// tag, search limits) and becomes part of the key.
    pub(crate) fn new(model: &StackHeapModel, f: &SymHeap, scope: QueryScope) -> CanonicalQuery {
        let binders: Vec<Symbol> = f.exists.clone();

        // Canonical formula text: binders renamed positionally. `$`
        // cannot occur in source identifiers, so the names are safe.
        let canon_formula = if binders.is_empty() {
            f.clone()
        } else {
            let map: Subst = binders
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, Expr::Var(Symbol::intern(&format!("$c{i}")))))
                .collect();
            sling_logic::subst_symheap_bound(f, &map)
        };

        let mut q = CanonicalQuery {
            key: CacheKey::new(scope, String::new()),
            preds: formula_pred_mentions(f),
            binders,
            loc_ids: BTreeMap::new(),
            id_locs: Vec::new(),
            dangling_ids: BTreeMap::new(),
            id_dangling: Vec::new(),
        };

        // Enumerate in-heap addresses: BFS from the formula's free
        // variables in name order, then unreached cells in address
        // order. This fixes the cell order the key lists below.
        let free: Vec<Symbol> = f.free_vars().into_iter().collect(); // sorted
        let mut queue: VecDeque<Loc> = VecDeque::new();
        for v in &free {
            if let Some(Val::Addr(loc)) = model.stack.get(*v) {
                if model.heap.contains(loc) && q.assign_in_heap(loc) {
                    queue.push_back(loc);
                }
            }
        }
        while let Some(loc) = queue.pop_front() {
            let Some(cell) = model.heap.get(loc) else {
                continue;
            };
            for val in &cell.fields {
                if let Val::Addr(next) = val {
                    if model.heap.contains(*next) && q.assign_in_heap(*next) {
                        queue.push_back(*next);
                    }
                }
            }
        }
        for loc in model.heap.domain() {
            q.assign_in_heap(loc);
        }

        // Write the canonical text: formula, free-variable values, heap
        // cells. The write order is exactly the canonical order, so
        // dangling ids are assigned deterministically as they are first
        // printed.
        use std::fmt::Write as _;
        let mut key = String::with_capacity(64 + 16 * q.id_locs.len());
        let _ = write!(key, "{canon_formula}\n;");
        for v in &free {
            match model.stack.get(*v) {
                Some(val) => {
                    let c = q.canon_val(val, model);
                    let _ = write!(key, "{v}={c:?},");
                }
                None => {
                    let _ = write!(key, "{v}=?,");
                }
            }
        }
        key.push_str("\n;");
        for i in 0..q.id_locs.len() {
            let loc = q.id_locs[i];
            let cell = model.heap.get(loc).expect("enumerated from the domain");
            let _ = write!(key, "{}{{", cell.ty);
            for val in &cell.fields {
                let c = q.canon_val(*val, model);
                let _ = write!(key, "{c:?},");
            }
            key.push_str("};");
        }
        q.key = CacheKey::new(scope, key);
        q
    }

    fn assign_in_heap(&mut self, loc: Loc) -> bool {
        if self.loc_ids.contains_key(&loc) {
            return false;
        }
        self.loc_ids.insert(loc, self.id_locs.len() as u32);
        self.id_locs.push(loc);
        true
    }

    /// Canonicalizes a value, assigning a dangling id on first sight of
    /// an address outside the heap.
    fn canon_val(&mut self, val: Val, model: &StackHeapModel) -> CanonVal {
        match val {
            Val::Nil => CanonVal::Nil,
            Val::Int(k) => CanonVal::Int(k),
            Val::Addr(loc) => {
                if model.heap.contains(loc) {
                    CanonVal::InHeap(self.loc_ids[&loc])
                } else if let Some(&id) = self.dangling_ids.get(&loc) {
                    CanonVal::Dangling(id)
                } else {
                    let id = self.id_dangling.len() as u32;
                    self.dangling_ids.insert(loc, id);
                    self.id_dangling.push(loc);
                    CanonVal::Dangling(id)
                }
            }
        }
    }

    /// Translates a fresh reduction into canonical space for storage.
    /// Returns `None` when a value falls outside the canonical frame
    /// (cannot happen for reductions of the canonicalized query; guarded
    /// anyway so a surprise degrades to "don't cache" instead of a wrong
    /// entry).
    pub(crate) fn encode(&self, r: &Reduction) -> Option<CachedReduction> {
        let mut residual = Vec::with_capacity(r.residual.len());
        for loc in r.residual.domain() {
            residual.push(*self.loc_ids.get(&loc)?);
        }
        let mut inst = Vec::with_capacity(r.inst.len());
        for (sym, val) in r.inst.iter() {
            let name = match self.binders.iter().position(|b| *b == sym) {
                Some(i) => CanonName::Binder(i as u32),
                None => CanonName::Free(sym),
            };
            let cval = match val {
                Val::Nil => CanonVal::Nil,
                Val::Int(k) => CanonVal::Int(k),
                Val::Addr(loc) => match self.loc_ids.get(&loc) {
                    Some(id) => CanonVal::InHeap(*id),
                    None => CanonVal::Dangling(*self.dangling_ids.get(&loc)?),
                },
            };
            inst.push((name, cval));
        }
        Some(CachedReduction { residual, inst })
    }

    /// Rehydrates a stored verdict against this query's model.
    pub(crate) fn decode(&self, model: &StackHeapModel, c: &CachedReduction) -> Reduction {
        let locs: std::collections::BTreeSet<Loc> = c
            .residual
            .iter()
            .map(|id| self.id_locs[*id as usize])
            .collect();
        let residual = model.heap.restrict(&locs);
        let covered = model.heap.len() - residual.len();
        let inst = Instantiation::from_bindings(c.inst.iter().filter_map(|(name, cval)| {
            let sym = match name {
                CanonName::Binder(i) => *self.binders.get(*i as usize)?,
                CanonName::Free(s) => *s,
            };
            let val = match cval {
                CanonVal::Nil => Val::Nil,
                CanonVal::Int(k) => Val::Int(*k),
                CanonVal::InHeap(id) => Val::Addr(self.id_locs[*id as usize]),
                CanonVal::Dangling(id) => Val::Addr(self.id_dangling[*id as usize]),
            };
            Some((sym, val))
        }));
        Reduction {
            residual,
            inst,
            covered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::{
        parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, TypeEnv,
    };
    use sling_models::{Heap, HeapCell, Stack};

    use crate::CheckCtx;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn envs() -> (TypeEnv, PredEnv) {
        let node = sym("CNode");
        let mut types = TypeEnv::new();
        types
            .define(StructDef {
                name: node,
                fields: vec![FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                }],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for d in parse_predicates(
            "pred clist(x: CNode*) := emp & x == nil
               | exists u. x -> CNode{next: u} * clist(u);",
        )
        .unwrap()
        {
            preds.define(d).unwrap();
        }
        (types, preds)
    }

    /// `x` heads an `n`-cell list whose addresses start at `base`.
    fn list_model(n: u64, base: u64) -> StackHeapModel {
        let mut heap = Heap::new();
        for i in 0..n {
            let next = if i + 1 < n {
                Val::Addr(Loc::new(base + i + 1))
            } else {
                Val::Nil
            };
            heap.insert(Loc::new(base + i), HeapCell::new(sym("CNode"), vec![next]));
        }
        let mut stack = Stack::new();
        let head = if n == 0 {
            Val::Nil
        } else {
            Val::Addr(Loc::new(base))
        };
        stack.bind(sym("x"), head);
        StackHeapModel::new(stack, heap)
    }

    #[test]
    fn isomorphic_models_share_a_key() {
        let f = parse_formula("clist(x)").unwrap();
        let scope = QueryScope::default();
        let a = CanonicalQuery::new(&list_model(3, 1), &f, scope);
        let b = CanonicalQuery::new(&list_model(3, 100), &f, scope);
        assert_eq!(a.key, b.key);
        let c = CanonicalQuery::new(&list_model(4, 1), &f, scope);
        assert_ne!(a.key, c.key, "different shapes must differ");
    }

    #[test]
    fn binder_names_do_not_matter() {
        let m = list_model(2, 1);
        let scope = QueryScope::default();
        let f1 = parse_formula("exists u3. x -> CNode{next: u3} * clist(u3)").unwrap();
        let f2 = parse_formula("exists w9. x -> CNode{next: w9} * clist(w9)").unwrap();
        assert_eq!(
            CanonicalQuery::new(&m, &f1, scope).key,
            CanonicalQuery::new(&m, &f2, scope).key
        );
    }

    #[test]
    fn scope_is_part_of_the_key() {
        let m = list_model(2, 1);
        let f = parse_formula("clist(x)").unwrap();
        let a = CanonicalQuery::new(
            &m,
            &f,
            QueryScope {
                env_tag: 1,
                node_budget: 100,
                fuel_slack: 4,
            },
        );
        let b = CanonicalQuery::new(
            &m,
            &f,
            QueryScope {
                env_tag: 2,
                node_budget: 100,
                fuel_slack: 4,
            },
        );
        assert_ne!(a.key, b.key, "different env tags must not share entries");
    }

    #[test]
    fn cached_hit_equals_fresh_verdict() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let plain = CheckCtx::new(&types, &preds);
        let f = parse_formula("clist(x)").unwrap();

        let m1 = list_model(3, 1);
        let first = ctx.check(&m1, &f).expect("holds");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);

        // Isomorphic model at different addresses: must hit, and the
        // rehydrated reduction must match an uncached check bit for bit.
        let m2 = list_model(3, 50);
        let hit = ctx.check(&m2, &f).expect("holds");
        assert_eq!(cache.stats().hits, 1);
        let fresh = plain.check(&m2, &f).expect("holds");
        assert_eq!(hit, fresh);
        assert_eq!(hit.covered, first.covered);
        assert!(hit.residual.is_empty());
    }

    #[test]
    fn negative_verdicts_are_cached() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        // A 2-cycle never satisfies clist.
        let mut heap = Heap::new();
        heap.insert(
            Loc::new(1),
            HeapCell::new(sym("CNode"), vec![Val::Addr(Loc::new(2))]),
        );
        heap.insert(
            Loc::new(2),
            HeapCell::new(sym("CNode"), vec![Val::Addr(Loc::new(1))]),
        );
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(Loc::new(1)));
        let m = StackHeapModel::new(stack, heap);
        let f = parse_formula("clist(x)").unwrap();
        assert!(ctx.check(&m, &f).is_none());
        assert!(ctx.check(&m, &f).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn partial_reduction_rehydrates_residual() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        // x -> a -> b, but also an unreachable extra cell: clist(x)
        // covers the chain, the stray cell is residue.
        let mk = |base: u64| {
            let mut m = list_model(2, base);
            m.heap.insert(
                Loc::new(base + 77),
                HeapCell::new(sym("CNode"), vec![Val::Nil]),
            );
            m
        };
        let f = parse_formula("clist(x)").unwrap();
        let r1 = ctx.check(&mk(1), &f).expect("holds");
        assert_eq!(r1.residual.len(), 1);
        let r2 = ctx.check(&mk(200), &f).expect("holds");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(r2.residual.len(), 1);
        assert!(
            r2.residual.contains(Loc::new(277)),
            "residue maps to the query's space"
        );
    }

    #[test]
    fn budget_limited_verdicts_do_not_poison_full_budget_queries() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let starved = CheckCtx::with_cache(
            &types,
            &preds,
            crate::CheckConfig {
                node_budget: 1,
                fuel_slack: 0,
            },
            &cache,
        );
        let full = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();
        // The starved context gives up early; whatever it caches must not
        // answer the full-budget query for the same shape.
        let _ = starved.check(&list_model(3, 1), &f);
        let red = full
            .check(&list_model(3, 50), &f)
            .expect("full budget proves it");
        assert!(red.residual.is_empty());
    }

    #[test]
    fn different_environments_never_share_entries() {
        // Same predicate *name*, different definition, one shared cache:
        // the env fingerprint must keep their entries apart.
        let (types, preds_real) = envs();
        let mut preds_empty_only = PredEnv::new();
        for d in parse_predicates("pred clist(x: CNode*) := emp & x == nil;").unwrap() {
            preds_empty_only.define(d).unwrap();
        }
        let cache = CheckCache::new();
        let real = CheckCtx::with_cache(&types, &preds_real, Default::default(), &cache);
        let degenerate =
            CheckCtx::with_cache(&types, &preds_empty_only, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();

        assert!(real.check(&list_model(2, 1), &f).is_some());
        // Under the emp-only definition an allocated list can never
        // satisfy clist(x); a cross-env cache hit would claim it does.
        assert!(degenerate.check(&list_model(2, 40), &f).is_none());
        assert_eq!(
            cache.stats().hits,
            0,
            "isomorphic shapes, different envs: no sharing"
        );
    }

    #[test]
    fn stats_since_subtracts() {
        let a = CacheStats {
            hits: 10,
            warm_hits: 2,
            misses: 4,
            entries: 9,
            evictions: 1,
            resident_bytes: 900,
            remote_hits: 3,
            remote_misses: 1,
            remote_degraded: 0,
            remote_nanos: 500,
        };
        let b = CacheStats {
            hits: 13,
            warm_hits: 6,
            misses: 5,
            entries: 11,
            evictions: 4,
            resident_bytes: 1100,
            remote_hits: 4,
            remote_misses: 1,
            remote_degraded: 2,
            remote_nanos: 750,
        };
        let d = b.since(&a);
        assert_eq!((d.hits, d.warm_hits, d.misses, d.entries), (3, 4, 1, 11));
        assert_eq!((d.evictions, d.resident_bytes), (3, 1100));
        assert_eq!(d.lookups(), 4);
        assert_eq!(
            (
                d.remote_hits,
                d.remote_misses,
                d.remote_degraded,
                d.remote_nanos
            ),
            (1, 0, 2, 250)
        );
    }

    #[test]
    fn capacity_bounds_entries() {
        let (types, preds) = envs();
        // Capacity is enforced per shard: one entry per shard here.
        let cache = CheckCache::with_capacity(SHARD_COUNT);
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();
        for n in 0..(4 * SHARD_COUNT as u64) {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        assert!(cache.stats().entries <= SHARD_COUNT as u64);
    }

    #[test]
    fn tiny_capacities_still_cache() {
        // A sub-shard-count capacity rounds up to one entry per shard
        // instead of silently disabling retention.
        let (types, preds) = envs();
        let cache = CheckCache::with_capacity(2);
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();
        let _ = ctx.check(&list_model(3, 1), &f);
        let _ = ctx.check(&list_model(3, 50), &f);
        let stats = cache.stats();
        assert!(stats.entries >= 1, "{stats:?}");
        assert_eq!(stats.hits, 1, "isomorphic re-query must hit: {stats:?}");
    }

    #[test]
    fn stats_sum_exactly_under_concurrent_use() {
        // Several threads hammer one shared cache with overlapping shape
        // sets; per-shard counters must sum to exactly the number of
        // lookups issued, and every shape must end up cached once.
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let f = parse_formula("clist(x)").unwrap();
        const THREADS: u64 = 8;
        const SHAPES: u64 = 24;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (cache, types, preds, f) = (&cache, &types, &preds, &f);
                s.spawn(move || {
                    let ctx = CheckCtx::with_cache(types, preds, Default::default(), cache);
                    for n in 0..SHAPES {
                        // Offset the start so threads collide on shapes
                        // mid-flight rather than in lockstep.
                        let shape = (n + t * 3) % SHAPES;
                        let _ = ctx.check(&list_model(shape, 1), f);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.lookups(),
            THREADS * SHAPES,
            "every lookup must be counted exactly once: {stats:?}"
        );
        assert_eq!(
            stats.entries, SHAPES,
            "each distinct shape is cached exactly once: {stats:?}"
        );
        // At most one miss per (shape, racing thread) pair; in practice
        // nearly every shape misses once. Hits account for the rest.
        assert!(stats.misses >= SHAPES, "{stats:?}");
        assert_eq!(stats.hits, stats.lookups() - stats.misses);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_first() {
        // One shard in play (capacity 1 per shard, but shapes spread):
        // use a generous per-shard view instead — fill one cache to its
        // bound, touch an early shape to refresh it, overflow, and the
        // refreshed shape must survive while an untouched one dies.
        let (types, preds) = envs();
        let cache = CheckCache::with_capacity(SHARD_COUNT); // 1 entry/shard
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();

        // Find two shapes landing on the same shard.
        let scope = QueryScope {
            env_tag: ctx.env_tag,
            node_budget: ctx.config.node_budget,
            fuel_slack: ctx.config.fuel_slack,
        };
        let shard_of = |n: u64| {
            CanonicalQuery::new(&list_model(n, 1), &f, scope)
                .key
                .shard()
        };
        let a = 1u64;
        let b = (2..64)
            .find(|n| shard_of(*n) == shard_of(a))
            .expect("some shape shares shard with a");

        let _ = ctx.check(&list_model(a, 1), &f); // miss, cached
        let _ = ctx.check(&list_model(a, 99), &f); // hit, refreshes stamp
        let _ = ctx.check(&list_model(b, 1), &f); // same shard: evicts, caches b
        assert_eq!(cache.stats().evictions, 1);

        // `a` was the evictee; re-querying is a miss with the correct
        // verdict, never a stale or aliased answer.
        let before = cache.stats();
        let red = ctx.check(&list_model(a, 7), &f).expect("still satisfiable");
        assert!(red.residual.is_empty());
        let after = cache.stats();
        assert_eq!(after.misses, before.misses + 1, "evicted key must miss");
    }

    #[test]
    fn resident_bytes_track_entries() {
        let (types, preds) = envs();
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let f = parse_formula("clist(x)").unwrap();
        assert_eq!(cache.stats().resident_bytes, 0);
        for n in 0..6 {
            let _ = ctx.check(&list_model(n, 1), &f);
        }
        let stats = cache.stats();
        assert!(stats.resident_bytes > 0);
        assert!(
            stats.resident_bytes >= stats.entries * ENTRY_OVERHEAD,
            "{stats:?}"
        );
        cache.clear();
        assert_eq!(cache.stats().resident_bytes, 0, "clear resets the ledger");
    }

    #[test]
    fn eviction_stress_keeps_accounting_exact_under_contention() {
        // Eight threads push a capacity-bounded cache far past its
        // limit with overlapping shape sets. Invariants: every lookup
        // is counted exactly once (hits + misses == issued), residency
        // never exceeds the capacity, evictions are observed, and every
        // answer equals a cold-search verdict.
        let (types, preds) = envs();
        const CAPACITY: usize = 2 * SHARD_COUNT; // 2 entries per shard
        const THREADS: u64 = 8;
        const SHAPES: u64 = 48;
        const PER_THREAD: u64 = 64;
        let cache = CheckCache::with_capacity(CAPACITY);
        let f = parse_formula("clist(x)").unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (cache, types, preds, f) = (&cache, &types, &preds, &f);
                s.spawn(move || {
                    let ctx = CheckCtx::with_cache(types, preds, Default::default(), cache);
                    let plain = CheckCtx::new(types, preds);
                    for i in 0..PER_THREAD {
                        let shape = (i * (t + 3)) % SHAPES;
                        let m = list_model(shape, 1);
                        let got = ctx.check(&m, f);
                        // A cached answer must never differ from a cold
                        // search — eviction may forget, not corrupt.
                        assert_eq!(got, plain.check(&m, f), "shape {shape}");
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.lookups(),
            THREADS * PER_THREAD,
            "hits + misses must stay exact: {stats:?}"
        );
        assert!(
            stats.entries <= CAPACITY as u64,
            "resident entries exceed the configured capacity: {stats:?}"
        );
        assert!(
            stats.evictions > 0,
            "48 shapes through a 32-entry cache must evict: {stats:?}"
        );
        assert!(stats.resident_bytes > 0);

        // Re-querying a just-evicted shape is a miss, answered freshly
        // and correctly.
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        let plain = CheckCtx::new(&types, &preds);
        let before = cache.stats();
        let mut saw_miss = false;
        for shape in 0..SHAPES {
            let m = list_model(shape, 5);
            assert_eq!(ctx.check(&m, &f), plain.check(&m, &f));
        }
        let after = cache.stats();
        saw_miss |= after.misses > before.misses;
        assert!(
            saw_miss,
            "with 48 shapes and 32 slots some re-query must miss: {after:?}"
        );
        assert!(after.entries <= CAPACITY as u64);
    }

    #[test]
    fn env_profile_tracks_per_predicate_change() {
        let (types, preds) = envs();
        let profile = EnvProfile::new(&types, &preds);
        assert_eq!(profile.env_tag(), env_fingerprint(&types, &preds));

        let old: BTreeMap<Symbol, u64> = profile.pred_table().collect();
        assert!(profile.closure_unchanged(&old, &[sym("clist")]));
        assert!(
            profile.closure_unchanged(&old, &[]),
            "pure formulas depend on no predicate"
        );
        assert!(
            !profile.closure_unchanged(&old, &[sym("not_a_pred")]),
            "unknown mentions are conservatively stale"
        );

        // Change the definition: same name, different fingerprint.
        let mut changed = PredEnv::new();
        for d in parse_predicates("pred clist(x: CNode*) := emp & x == nil;").unwrap() {
            changed.define(d).unwrap();
        }
        let changed_profile = EnvProfile::new(&types, &changed);
        assert_ne!(changed_profile.env_tag(), profile.env_tag());
        assert!(
            !changed_profile.closure_unchanged(&old, &[sym("clist")]),
            "a changed definition must invalidate"
        );
    }

    #[test]
    fn formula_mentions_are_sorted_unique_pred_names() {
        let f = parse_formula("clist(x) * clist(y) * pseg2(y, x)").unwrap();
        assert_eq!(
            formula_pred_mentions(&f),
            vec![sym("clist"), sym("pseg2")]
                .into_iter()
                .collect::<Vec<_>>()
        );
        let pure_only = parse_formula("emp & x == nil").unwrap();
        assert!(formula_pred_mentions(&pure_only).is_empty());
    }

    #[test]
    fn fingerprints_spread_over_shards() {
        let f = parse_formula("clist(x)").unwrap();
        let scope = QueryScope::default();
        let shards: std::collections::BTreeSet<usize> = (0..64)
            .map(|n| {
                CanonicalQuery::new(&list_model(n, 1), &f, scope)
                    .key
                    .shard()
            })
            .collect();
        assert!(
            shards.len() > SHARD_COUNT / 2,
            "64 distinct shapes should touch most of the {SHARD_COUNT} shards, got {}",
            shards.len()
        );
    }
}
