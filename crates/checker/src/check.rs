//! The model-checking search.
//!
//! Implements the reduction `s, h ⊩ F ⇝ h', ι` of Definition 2: given a
//! concrete stack-heap model and a symbolic heap `F`, find a residual heap
//! `h' ⊆ h` and an instantiation `ι` of `F`'s existential variables such
//! that `s, h \ h' ⊨ι F`.
//!
//! The paper encodes this judgment into Z3 following Brotherston et al.
//! (POPL'16). Checking against a *concrete finite* model is decidable by
//! bounded unfolding — every cycle of predicate unfoldings consumes at
//! least one cell (productivity, enforced by `sling_logic::check_pred_env`
//! at engine build time; bounded unguarded wrapper hops are absorbed by
//! `fuel_slack`) — so this crate performs a direct backtracking search
//! instead (see DESIGN.md §1 for why this substitution is
//! behaviour-preserving):
//!
//! * points-to atoms consume one available cell and *bind* unbound
//!   existentials occurring as their root or field values;
//! * predicate atoms unfold case by case (cases with more spatial atoms
//!   first, so the search is greedy toward large coverage);
//! * pure atoms are deferred and discharged by fixpoint propagation once
//!   the spatial goals of a branch are exhausted.
//!
//! Among accepted carvings the search keeps the one with the smallest
//! residue (maximal coverage) and stops early when the residue is empty.

use std::collections::{BTreeMap, BTreeSet};

use sling_logic::{Expr, PredEnv, PureAtom, SpatialAtom, Subst, SymHeap, Symbol, TypeEnv};
use sling_models::{Heap, Loc, StackHeapModel, Val};

use crate::cache::{CanonicalQuery, CheckCache, QueryScope};
use crate::inst::Instantiation;

/// Tuning knobs for the search.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum number of search nodes explored per model before the search
    /// gives up and returns the best solution found so far (mirrors the
    /// paper's Z3 timeouts on trace-heavy loop locations).
    pub node_budget: u64,
    /// Extra unfolding depth allowed beyond the heap size.
    pub fuel_slack: u32,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            node_budget: 200_000,
            fuel_slack: 24,
        }
    }
}

/// A successful reduction `s, h ⊩ F ⇝ h', ι`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// The residual heap `h'` — the part of `h` *not* modeled by `F`.
    pub residual: Heap,
    /// Instantiation of `F`'s existential variables. Existentials that the
    /// model leaves unconstrained (e.g. both sides of a vacuous equality)
    /// are absent.
    pub inst: Instantiation,
    /// Number of cells of `h` covered by `F` (`|h| - |h'|`).
    pub covered: usize,
}

/// Shared context for checking: type and predicate environments plus
/// configuration, optionally backed by a memoizing [`CheckCache`].
#[derive(Debug, Clone, Copy)]
pub struct CheckCtx<'a> {
    /// Structure definitions.
    pub types: &'a TypeEnv,
    /// Inductive predicate definitions.
    pub preds: &'a PredEnv,
    /// Search limits.
    pub config: CheckConfig,
    /// Entailment cache consulted by [`CheckCtx::check`]; `None` runs
    /// every query cold.
    pub cache: Option<&'a CheckCache>,
    /// Fingerprint of `(types, preds)` mixed into every cache key, so a
    /// [`CheckCache`] shared between contexts with *different*
    /// environments can never exchange verdicts (a predicate name alone
    /// does not identify its definition). Zero when no cache is used.
    pub env_tag: u64,
    /// Remote cache tier consulted on local misses and offered fresh
    /// verdicts for write-behind upload (see [`crate::remote`]). Only
    /// meaningful together with `cache`: the remote tier fills and is
    /// filled from the local one, never bypasses it.
    pub remote: Option<&'a dyn crate::remote::RemoteCache>,
}

impl<'a> CheckCtx<'a> {
    /// Creates a context with default limits and no cache.
    pub fn new(types: &'a TypeEnv, preds: &'a PredEnv) -> CheckCtx<'a> {
        CheckCtx {
            types,
            preds,
            config: CheckConfig::default(),
            cache: None,
            env_tag: 0,
            remote: None,
        }
    }

    /// Creates a context whose checks are memoized in `cache`.
    pub fn with_cache(
        types: &'a TypeEnv,
        preds: &'a PredEnv,
        config: CheckConfig,
        cache: &'a CheckCache,
    ) -> CheckCtx<'a> {
        CheckCtx {
            types,
            preds,
            config,
            cache: Some(cache),
            env_tag: crate::cache::env_fingerprint(types, preds),
            remote: None,
        }
    }

    /// Returns a copy of this context with different search limits.
    ///
    /// Used by the verification pass to run prover-initiated checks under
    /// a tighter budget than trace checking; the budget is part of the
    /// cache key, so re-limited contexts never exchange verdicts with the
    /// full-budget ones.
    pub fn with_config(mut self, config: CheckConfig) -> CheckCtx<'a> {
        self.config = config;
        self
    }

    /// Checks `f` against one model, returning the minimal-residue
    /// reduction if one exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use sling_checker::CheckCtx;
    /// use sling_logic::{parse_formula, parse_predicates, PredEnv, Symbol, TypeEnv};
    /// use sling_logic::{FieldDef, FieldTy, StructDef};
    /// use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};
    ///
    /// let node = Symbol::intern("Node");
    /// let mut types = TypeEnv::new();
    /// types.define(StructDef {
    ///     name: node,
    ///     fields: vec![FieldDef { name: Symbol::intern("next"), ty: FieldTy::Ptr(node) }],
    /// }).unwrap();
    /// let mut preds = PredEnv::new();
    /// for d in sling_logic::parse_predicates(
    ///     "pred sll(x: Node*) := emp & x == nil | exists u. x -> Node{next: u} * sll(u);",
    /// ).unwrap() {
    ///     preds.define(d).unwrap();
    /// }
    ///
    /// // x = 0x01, heap: 0x01 -> 0x02 -> nil
    /// let mut heap = Heap::new();
    /// heap.insert(Loc::new(1), HeapCell::new(node, vec![Val::Addr(Loc::new(2))]));
    /// heap.insert(Loc::new(2), HeapCell::new(node, vec![Val::Nil]));
    /// let mut stack = Stack::new();
    /// stack.bind(Symbol::intern("x"), Val::Addr(Loc::new(1)));
    /// let model = StackHeapModel::new(stack, heap);
    ///
    /// let ctx = CheckCtx::new(&types, &preds);
    /// let red = ctx.check(&model, &parse_formula("sll(x)").unwrap()).unwrap();
    /// assert_eq!(red.covered, 2);
    /// assert!(red.residual.is_empty());
    /// ```
    pub fn check(&self, model: &StackHeapModel, f: &SymHeap) -> Option<Reduction> {
        let Some(cache) = self.cache else {
            return Search::new(*self, model, f).run(f);
        };
        // The key must cover everything the verdict depends on: the
        // environments (tag) and the search limits (a budget-truncated
        // "no" must not answer a full-budget query).
        let scope = QueryScope {
            env_tag: self.env_tag,
            node_budget: self.config.node_budget,
            fuel_slack: self.config.fuel_slack,
        };
        let query = CanonicalQuery::new(model, f, scope);
        if let Some(entry) = cache.lookup(&query.key) {
            return entry.map(|cached| query.decode(model, &cached));
        }
        // Local miss: consult the remote tier before running the
        // search. A hit lands in the local cache as a warm entry at the
        // server's generation, so later snapshot merges and anti-entropy
        // rounds order against it correctly; an undecodable blob (or a
        // degraded tier) simply falls through to the cold search.
        if let Some(remote) = self.remote {
            use crate::remote::{RemoteLookup, RemoteQuery};
            let started = std::time::Instant::now();
            let lookup = remote.fetch(&RemoteQuery {
                node_budget: scope.node_budget,
                fuel_slack: scope.fuel_slack,
                text: query.key.text.as_ref(),
            });
            let nanos = started.elapsed().as_nanos() as u64;
            match lookup {
                RemoteLookup::Hit(hit) => {
                    let value = match &hit.value {
                        None => Some(None),
                        Some(blob) => crate::remote::decode_verdict(blob).map(Some),
                    };
                    match value {
                        Some(value) => {
                            cache.note_remote_hit(nanos);
                            let preds: Vec<Symbol> =
                                hit.preds.iter().map(|name| Symbol::intern(name)).collect();
                            cache.store_warm(
                                query.key.clone(),
                                value.clone(),
                                &preds,
                                hit.generation,
                            );
                            return value.map(|cached| query.decode(model, &cached));
                        }
                        None => cache.note_remote_miss(nanos),
                    }
                }
                RemoteLookup::Miss => cache.note_remote_miss(nanos),
                RemoteLookup::Degraded => cache.note_remote_degraded(nanos),
            }
        }
        let result = Search::new(*self, model, f).run(f);
        // `encode` only declines when a value escapes the canonical
        // frame; in that case skip storing (and publishing) rather than
        // memoize something untranslatable.
        let encoded = match &result {
            Some(r) => query.encode(r).map(Some),
            None => Some(None),
        };
        if let Some(value) = encoded {
            // Freshly computed verdicts — and only fresh ones; remote
            // hits absorbed above are never re-published — are offered
            // to the write-behind queue before the key moves into the
            // local store.
            if let Some(remote) = self.remote {
                remote.publish(crate::remote::RemotePublish {
                    node_budget: scope.node_budget,
                    fuel_slack: scope.fuel_slack,
                    text: query.key.text.to_string(),
                    value: value.as_ref().map(crate::remote::encode_verdict),
                    preds: query
                        .preds
                        .iter()
                        .map(|name| name.as_str().to_string())
                        .collect(),
                });
            }
            cache.store(query.key, value, &query.preds);
        }
        result
    }

    /// True if `f` models the heap *exactly* (empty residue).
    pub fn holds_exact(&self, model: &StackHeapModel, f: &SymHeap) -> bool {
        self.check(model, f)
            .map(|r| r.residual.is_empty())
            .unwrap_or(false)
    }

    /// Checks `f` against every model of a sequence; `None` unless all
    /// models admit a reduction.
    pub fn check_all(&self, models: &[StackHeapModel], f: &SymHeap) -> Option<Vec<Reduction>> {
        models.iter().map(|m| self.check(m, f)).collect()
    }

    /// True if the disjunction holds exactly on the model: some disjunct
    /// has an empty residue.
    pub fn holds_exact_disj(&self, model: &StackHeapModel, fs: &[SymHeap]) -> bool {
        fs.iter().any(|f| self.holds_exact(model, f))
    }
}

/// Partial valuation during search: existential bindings layered over the
/// (immutable) stack, plus a union structure for variables equated while
/// both are unbound.
#[derive(Debug, Clone, Default)]
struct Env {
    bound: BTreeMap<Symbol, Val>,
    classes: Vec<BTreeSet<Symbol>>,
}

impl Env {
    fn union_unbound(&mut self, a: Symbol, b: Symbol) {
        if a == b {
            return;
        }
        let ia = self.classes.iter().position(|c| c.contains(&a));
        let ib = self.classes.iter().position(|c| c.contains(&b));
        match (ia, ib) {
            (None, None) => self.classes.push([a, b].into_iter().collect()),
            (Some(i), None) => {
                self.classes[i].insert(b);
            }
            (None, Some(j)) => {
                self.classes[j].insert(a);
            }
            (Some(i), Some(j)) if i != j => {
                let hi = i.max(j);
                let lo = i.min(j);
                let moved = self.classes.swap_remove(hi);
                self.classes[lo].extend(moved);
            }
            _ => {}
        }
    }

    fn same_class(&self, a: Symbol, b: Symbol) -> bool {
        a == b
            || self
                .classes
                .iter()
                .any(|c| c.contains(&a) && c.contains(&b))
    }

    /// Binding a variable also binds its whole unbound-equality class.
    fn bind(&mut self, v: Symbol, val: Val) {
        if let Some(i) = self.classes.iter().position(|c| c.contains(&v)) {
            let class = self.classes.swap_remove(i);
            for member in class {
                self.bound.insert(member, val);
            }
        } else {
            self.bound.insert(v, val);
        }
    }
}

/// Result of evaluating an expression under stack + env.
enum Evaled {
    Known(Val),
    /// The expression is a single variable that is currently unbound (and
    /// therefore bindable).
    FreeVar(Symbol),
    /// Contains unbound variables under arithmetic — not bindable.
    Stuck,
}

#[derive(Debug, Clone)]
struct State {
    env: Env,
    avail: BTreeSet<Loc>,
    /// Spatial atoms left to match.
    goals: Vec<SpatialAtom>,
    /// Deferred pure atoms.
    pure: Vec<PureAtom>,
    fuel: u32,
}

struct Search<'a> {
    ctx: CheckCtx<'a>,
    model: &'a StackHeapModel,
    formula_exists: BTreeSet<Symbol>,
    nodes: u64,
    fresh_counter: u32,
    /// Best solution so far: remaining (uncovered) locations + env.
    best: Option<(BTreeSet<Loc>, Env)>,
    done: bool,
}

impl<'a> Search<'a> {
    fn new(ctx: CheckCtx<'a>, model: &'a StackHeapModel, f: &SymHeap) -> Search<'a> {
        let mut formula_exists: BTreeSet<Symbol> = f.exists.iter().copied().collect();
        // Free variables of the formula that are not on the stack behave
        // like existentials: they can be bound by matching. This lets
        // callers check open formulae.
        for v in f.free_vars() {
            if model.stack.get(v).is_none() {
                formula_exists.insert(v);
            }
        }
        Search {
            ctx,
            model,
            formula_exists,
            nodes: 0,
            fresh_counter: 0,
            best: None,
            done: false,
        }
    }

    fn run(mut self, f: &SymHeap) -> Option<Reduction> {
        let state = State {
            env: Env::default(),
            avail: self.model.heap.domain(),
            goals: f.spatial.clone(),
            pure: f.pure.clone(),
            fuel: 2 * self.model.heap.len() as u32 + self.ctx.config.fuel_slack,
        };
        self.explore(state);
        let (remaining, env) = self.best?;
        let residual = self.model.heap.restrict(&remaining);
        let covered = self.model.heap.len() - residual.len();
        let inst = Instantiation::from_bindings(
            env.bound
                .iter()
                .filter(|(v, _)| self.formula_exists.contains(*v))
                .map(|(v, val)| (*v, *val)),
        );
        Some(Reduction {
            residual,
            inst,
            covered,
        })
    }

    fn fresh(&mut self) -> Symbol {
        self.fresh_counter += 1;
        Symbol::intern(&format!("$u{}", self.fresh_counter))
    }

    fn eval(&self, env: &Env, e: &Expr) -> Evaled {
        match e {
            Expr::Nil => Evaled::Known(Val::Nil),
            Expr::Int(k) => Evaled::Known(Val::Int(*k)),
            Expr::Var(v) => {
                if let Some(val) = env.bound.get(v) {
                    Evaled::Known(*val)
                } else if let Some(val) = self.model.stack.get(*v) {
                    // Stack bindings win only for non-existential names;
                    // an existential shadowing a stack name is freshened
                    // during unfolding, so plain lookup is safe.
                    if self.formula_exists.contains(v) {
                        Evaled::FreeVar(*v)
                    } else {
                        Evaled::Known(val)
                    }
                } else {
                    Evaled::FreeVar(*v)
                }
            }
            Expr::Neg(inner) => match self.eval(env, inner) {
                Evaled::Known(Val::Int(k)) => Evaled::Known(Val::Int(-k)),
                Evaled::Known(_) => Evaled::Stuck,
                _ => Evaled::Stuck,
            },
            Expr::Add(a, b) => self.eval_arith(env, a, b, |x, y| x.checked_add(y)),
            Expr::Sub(a, b) => self.eval_arith(env, a, b, |x, y| x.checked_sub(y)),
            Expr::Mul(k, inner) => match self.eval(env, inner) {
                Evaled::Known(Val::Int(v)) => match k.checked_mul(v) {
                    Some(r) => Evaled::Known(Val::Int(r)),
                    None => Evaled::Stuck,
                },
                _ => Evaled::Stuck,
            },
        }
    }

    fn eval_arith(&self, env: &Env, a: &Expr, b: &Expr, op: fn(i64, i64) -> Option<i64>) -> Evaled {
        match (self.eval(env, a), self.eval(env, b)) {
            (Evaled::Known(Val::Int(x)), Evaled::Known(Val::Int(y))) => match op(x, y) {
                Some(r) => Evaled::Known(Val::Int(r)),
                None => Evaled::Stuck,
            },
            _ => Evaled::Stuck,
        }
    }

    /// Depth-first exploration. Updates `self.best`; sets `self.done` when
    /// a full-coverage solution has been found (no better exists).
    fn explore(&mut self, mut state: State) {
        if self.done {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.ctx.config.node_budget {
            self.done = true; // out of budget: keep whatever we have
            return;
        }

        // Eagerly discharge pure atoms that are already decidable; this
        // prunes doomed branches (e.g. a base case chosen mid-chain) long
        // before the leaf.
        if !self.propagate(&mut state) {
            return;
        }

        // Pick the next goal: prefer a points-to with a known root, then a
        // predicate with any known argument, then anything.
        let next = self.pick_goal(&state);
        let Some(idx) = next else {
            // All spatial goals matched; discharge the pure part.
            if let Some(env) = self.solve_pure(state.env.clone(), &state.pure) {
                let better = match &self.best {
                    None => true,
                    Some((best_remaining, _)) => state.avail.len() < best_remaining.len(),
                };
                if better {
                    let full = state.avail.is_empty();
                    self.best = Some((state.avail, env));
                    if full {
                        self.done = true;
                    }
                }
            }
            return;
        };

        let goal = state.goals.swap_remove(idx);
        match goal {
            SpatialAtom::PointsTo { root, ty, fields } => {
                match self.eval(&state.env, &root) {
                    Evaled::Known(Val::Addr(loc)) => {
                        self.match_cell(state, loc, ty, &fields);
                    }
                    Evaled::Known(_) => {} // nil or int root: unsatisfiable
                    Evaled::FreeVar(v) => {
                        // Enumerate candidate cells of the right type.
                        let candidates: Vec<Loc> = state
                            .avail
                            .iter()
                            .copied()
                            .filter(|l| {
                                self.model.heap.get(*l).map(|c| c.ty == ty).unwrap_or(false)
                            })
                            .collect();
                        for loc in candidates {
                            let mut st = state.clone();
                            st.env.bind(v, Val::Addr(loc));
                            self.match_cell(st, loc, ty, &fields);
                            if self.done {
                                return;
                            }
                        }
                    }
                    Evaled::Stuck => {}
                }
            }
            SpatialAtom::Pred { name, args } => {
                let Some(def) = self.ctx.preds.get(name) else {
                    return;
                };
                if def.arity() != args.len() || state.fuel == 0 {
                    return;
                }
                let mut cases = def.unfold(&args);
                // Greedy: try cases with more spatial atoms first so the
                // first solutions found have large coverage.
                cases.sort_by_key(|c| std::cmp::Reverse(c.spatial.len()));
                for case in cases {
                    // Freshen the case's own binders so repeated unfoldings
                    // of the same definition do not collide.
                    let case = self.freshen_case(case);
                    let mut st = state.clone();
                    st.fuel -= 1;
                    st.goals.extend(case.spatial);
                    st.pure.extend(case.pure);
                    self.explore(st);
                    if self.done {
                        return;
                    }
                }
            }
        }
    }

    /// Matches one points-to goal against the concrete cell at `loc`.
    fn match_cell(
        &mut self,
        mut state: State,
        loc: Loc,
        ty: Symbol,
        fields: &[sling_logic::FieldAssign],
    ) {
        if !state.avail.contains(&loc) {
            return;
        }
        let Some(cell) = self.model.heap.get(loc) else {
            return;
        };
        if cell.ty != ty {
            return;
        }
        let Some(def) = self.ctx.types.get(ty) else {
            return;
        };
        for fa in fields {
            let Some(i) = def.field_index(fa.name) else {
                return;
            };
            let Some(actual) = cell.fields.get(i).copied() else {
                return;
            };
            match self.eval(&state.env, &fa.value) {
                Evaled::Known(v) => {
                    if v != actual {
                        return;
                    }
                }
                Evaled::FreeVar(v) => state.env.bind(v, actual),
                Evaled::Stuck => return,
            }
        }
        state.avail.remove(&loc);
        self.explore(state);
    }

    /// Chooses the index of the next goal to attack, or `None` if no goals
    /// remain.
    fn pick_goal(&self, state: &State) -> Option<usize> {
        if state.goals.is_empty() {
            return None;
        }
        // 1. points-to with known root
        for (i, g) in state.goals.iter().enumerate() {
            if let SpatialAtom::PointsTo { root, .. } = g {
                if matches!(self.eval(&state.env, root), Evaled::Known(_)) {
                    return Some(i);
                }
            }
        }
        // 2. predicate with a known first pointer argument
        for (i, g) in state.goals.iter().enumerate() {
            if let SpatialAtom::Pred { args, .. } = g {
                if args
                    .iter()
                    .any(|a| matches!(self.eval(&state.env, a), Evaled::Known(_)))
                {
                    return Some(i);
                }
            }
        }
        // 3. anything
        Some(0)
    }

    /// Eager propagation used mid-search: binds variables via decidable
    /// equalities, discards satisfied atoms, and reports contradictions.
    /// Atoms that are not yet decidable are kept for the leaf check.
    fn propagate(&self, state: &mut State) -> bool {
        loop {
            let mut progress = false;
            let mut keep: Vec<PureAtom> = Vec::with_capacity(state.pure.len());
            for atom in std::mem::take(&mut state.pure) {
                let (a, b) = atom.operands();
                match (self.eval(&state.env, a), self.eval(&state.env, b)) {
                    (Evaled::Known(va), Evaled::Known(vb)) => {
                        let ok = match &atom {
                            PureAtom::Eq(..) => va == vb,
                            PureAtom::Neq(..) => va != vb,
                            PureAtom::Lt(..) => {
                                matches!((va, vb), (Val::Int(x), Val::Int(y)) if x < y)
                            }
                            PureAtom::Le(..) => {
                                matches!((va, vb), (Val::Int(x), Val::Int(y)) if x <= y)
                            }
                        };
                        if !ok {
                            return false;
                        }
                        progress = true; // atom discharged
                    }
                    (Evaled::Known(va), Evaled::FreeVar(vb))
                        if matches!(atom, PureAtom::Eq(..)) =>
                    {
                        state.env.bind(vb, va);
                        progress = true;
                    }
                    (Evaled::FreeVar(va), Evaled::Known(vb))
                        if matches!(atom, PureAtom::Eq(..)) =>
                    {
                        state.env.bind(va, vb);
                        progress = true;
                    }
                    _ => keep.push(atom),
                }
            }
            state.pure = keep;
            if !progress {
                return true;
            }
        }
    }

    /// Fixpoint propagation and final evaluation of the pure part.
    /// Returns the extended environment on success.
    fn solve_pure(&self, mut env: Env, pure: &[PureAtom]) -> Option<Env> {
        let mut atoms: Vec<PureAtom> = pure.to_vec();
        // Propagate equalities that bind unbound variables.
        loop {
            let mut progress = false;
            let mut still: Vec<PureAtom> = Vec::with_capacity(atoms.len());
            for atom in &atoms {
                if let PureAtom::Eq(a, b) = atom {
                    match (self.eval(&env, a), self.eval(&env, b)) {
                        (Evaled::Known(va), Evaled::FreeVar(vb)) => {
                            env.bind(vb, va);
                            progress = true;
                            continue;
                        }
                        (Evaled::FreeVar(va), Evaled::Known(vb)) => {
                            env.bind(va, vb);
                            progress = true;
                            continue;
                        }
                        _ => {}
                    }
                }
                still.push(atom.clone());
            }
            atoms = still;
            if !progress {
                break;
            }
        }
        // Evaluate what remains. Constraints over still-unbound variables
        // are checked for satisfiability: interval feasibility for
        // variable-vs-constant bounds, plus strict-cycle detection for
        // variable-vs-variable order constraints. (Mixed chains such as
        // `a <= b & b <= 3 & 5 <= a` are accepted optimistically — full
        // difference-constraint solving is not needed by any predicate in
        // the benchmark suite.)
        let mut bounds: BTreeMap<Symbol, (Option<i64>, Option<i64>)> = BTreeMap::new();
        let mut exclude: BTreeMap<Symbol, BTreeSet<Val>> = BTreeMap::new();
        // (from, to, strict): `from < to` or `from <= to`.
        let mut order_edges: Vec<(Symbol, Symbol, bool)> = Vec::new();
        for atom in &atoms {
            let (a, b) = atom.operands();
            match (self.eval(&env, a), self.eval(&env, b)) {
                (Evaled::Known(va), Evaled::Known(vb)) => {
                    let ok = match atom {
                        PureAtom::Eq(..) => va == vb,
                        PureAtom::Neq(..) => va != vb,
                        PureAtom::Lt(..) => match (va, vb) {
                            (Val::Int(x), Val::Int(y)) => x < y,
                            _ => false,
                        },
                        PureAtom::Le(..) => match (va, vb) {
                            (Val::Int(x), Val::Int(y)) => x <= y,
                            _ => false,
                        },
                    };
                    if !ok {
                        return None;
                    }
                }
                (Evaled::FreeVar(va), Evaled::FreeVar(vb)) => match atom {
                    // Vacuous equality between two unconstrained
                    // existentials: record the class and accept.
                    PureAtom::Eq(..) => env.union_unbound(va, vb),
                    PureAtom::Neq(..) => {
                        if env.same_class(va, vb) {
                            return None;
                        }
                    }
                    PureAtom::Lt(..) => {
                        if env.same_class(va, vb) {
                            return None;
                        }
                        order_edges.push((va, vb, true));
                    }
                    PureAtom::Le(..) => order_edges.push((va, vb, false)),
                },
                (Evaled::FreeVar(v), Evaled::Known(k)) => match atom {
                    PureAtom::Eq(..) => unreachable!("handled by propagation"),
                    PureAtom::Neq(..) => {
                        exclude.entry(v).or_default().insert(k);
                    }
                    PureAtom::Lt(..) => match k {
                        Val::Int(y) => tighten(&mut bounds, v, None, Some(y - 1)),
                        _ => return None,
                    },
                    PureAtom::Le(..) => match k {
                        Val::Int(y) => tighten(&mut bounds, v, None, Some(y)),
                        _ => return None,
                    },
                },
                (Evaled::Known(k), Evaled::FreeVar(v)) => match atom {
                    PureAtom::Eq(..) => unreachable!("handled by propagation"),
                    PureAtom::Neq(..) => {
                        exclude.entry(v).or_default().insert(k);
                    }
                    PureAtom::Lt(..) => match k {
                        Val::Int(x) => tighten(&mut bounds, v, Some(x + 1), None),
                        _ => return None,
                    },
                    PureAtom::Le(..) => match k {
                        Val::Int(x) => tighten(&mut bounds, v, Some(x), None),
                        _ => return None,
                    },
                },
                // One side stuck (unbound variables under arithmetic):
                // conservatively reject this carving.
                _ => return None,
            }
        }
        // Interval feasibility.
        for (v, (lo, hi)) in &bounds {
            if let (Some(lo), Some(hi)) = (lo, hi) {
                if lo > hi {
                    return None;
                }
                if lo == hi && exclude.get(v).is_some_and(|ex| ex.contains(&Val::Int(*lo))) {
                    return None;
                }
            }
        }
        // Strict cycles among unbound variables (e.g. a < b & b < a).
        if has_strict_cycle(&env, &order_edges) {
            return None;
        }
        Some(env)
    }

    /// Alpha-renames the bound variables of an unfolded case to fresh
    /// search-internal names.
    #[allow(clippy::wrong_self_convention)]
    fn freshen_case(&mut self, case: SymHeap) -> SymHeap {
        if case.exists.is_empty() {
            return case;
        }
        let map: Subst = case
            .exists
            .iter()
            .map(|v| (*v, Expr::Var(self.fresh())))
            .collect();
        sling_logic::subst_symheap_bound(&case, &map)
    }
}

/// Narrows the `[lo, hi]` interval recorded for `v`.
fn tighten(
    bounds: &mut BTreeMap<Symbol, (Option<i64>, Option<i64>)>,
    v: Symbol,
    lo: Option<i64>,
    hi: Option<i64>,
) {
    let entry = bounds.entry(v).or_insert((None, None));
    if let Some(lo) = lo {
        entry.0 = Some(entry.0.map_or(lo, |old| old.max(lo)));
    }
    if let Some(hi) = hi {
        entry.1 = Some(entry.1.map_or(hi, |old| old.min(hi)));
    }
}

/// Detects a cycle containing at least one strict edge in the order graph
/// over unbound-variable classes.
fn has_strict_cycle(env: &Env, edges: &[(Symbol, Symbol, bool)]) -> bool {
    if edges.is_empty() {
        return false;
    }
    // Collapse symbols to class representatives.
    let rep = |s: Symbol| -> Symbol {
        env.classes
            .iter()
            .find(|c| c.contains(&s))
            .and_then(|c| c.iter().next().copied())
            .unwrap_or(s)
    };
    let mut nodes: BTreeSet<Symbol> = BTreeSet::new();
    let mut adj: BTreeMap<Symbol, Vec<(Symbol, bool)>> = BTreeMap::new();
    for &(a, b, strict) in edges {
        let (a, b) = (rep(a), rep(b));
        if a == b {
            if strict {
                return true;
            }
            continue;
        }
        nodes.insert(a);
        nodes.insert(b);
        adj.entry(a).or_default().push((b, strict));
    }
    // DFS from each node tracking whether the path used a strict edge.
    for &start in &nodes {
        let mut stack = vec![(start, false)];
        let mut seen: BTreeSet<(Symbol, bool)> = BTreeSet::new();
        while let Some((n, strict_so_far)) = stack.pop() {
            for &(m, strict) in adj.get(&n).into_iter().flatten() {
                let s = strict_so_far || strict;
                if m == start && s {
                    return true;
                }
                if seen.insert((m, s)) {
                    stack.push((m, s));
                }
            }
        }
    }
    false
}
