//! Existential instantiations (the `ι` of Definition 1).

use std::collections::BTreeMap;
use std::fmt;

use sling_logic::Symbol;
use sling_models::Val;

/// A mapping from existential variables to concrete values, produced by a
/// successful model check.
///
/// Unconstrained existentials (ones the model never forces a value for) are
/// absent; SLING's pure inference only derives equalities between variables
/// that are *present* in every model's instantiation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instantiation {
    map: BTreeMap<Symbol, Val>,
}

impl Instantiation {
    /// The empty instantiation.
    pub fn new() -> Instantiation {
        Instantiation::default()
    }

    /// Builds an instantiation from `(variable, value)` pairs.
    pub fn from_bindings<I: IntoIterator<Item = (Symbol, Val)>>(iter: I) -> Instantiation {
        Instantiation {
            map: iter.into_iter().collect(),
        }
    }

    /// The value of `var`, if the model constrained it.
    pub fn get(&self, var: Symbol) -> Option<Val> {
        self.map.get(&var).copied()
    }

    /// Iterates over `(variable, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Val)> + '_ {
        self.map.iter().map(|(s, v)| (*s, *v))
    }

    /// Adds or replaces a binding.
    pub fn bind(&mut self, var: Symbol, val: Val) -> Option<Val> {
        self.map.insert(var, val)
    }

    /// Merges another instantiation (per Algorithm 1's `I ⊕ I'`).
    /// Later bindings win on clash (clashes do not occur in practice:
    /// the algorithm merges instantiations of disjoint existential sets).
    pub fn merge(&mut self, other: &Instantiation) {
        self.map.extend(other.iter());
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(Symbol, Val)> for Instantiation {
    fn from_iter<T: IntoIterator<Item = (Symbol, Val)>>(iter: T) -> Instantiation {
        Instantiation::from_bindings(iter)
    }
}

impl fmt::Display for Instantiation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ι{")?;
        for (i, (s, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s} := {v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_models::Loc;

    #[test]
    fn bind_get_merge() {
        let u = Symbol::intern("u1");
        let v = Symbol::intern("u2");
        let mut a = Instantiation::new();
        a.bind(u, Val::Addr(Loc::new(1)));
        let mut b = Instantiation::new();
        b.bind(v, Val::Nil);
        a.merge(&b);
        assert_eq!(a.get(u), Some(Val::Addr(Loc::new(1))));
        assert_eq!(a.get(v), Some(Val::Nil));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display() {
        let mut a = Instantiation::new();
        a.bind(Symbol::intern("u1"), Val::Addr(Loc::new(3)));
        assert_eq!(a.to_string(), "ι{u1 := 0x03}");
    }
}
