//! The remote entailment-cache hook: a write-through second tier
//! behind [`CheckCache`].
//!
//! A fleet of engines over the same predicate library re-derives the
//! same entailments; this module lets them share a cache *server*
//! instead of a shared snapshot directory. The checker stays transport
//! agnostic: it sees only the [`RemoteCache`] trait — consult on local
//! miss, publish fresh verdicts — and the network client lives a crate
//! up (`sling::remote`), the server a crate above that
//! (`sling-serve --cache-server`).
//!
//! Design constraints, in order:
//!
//! * **The hot path never blocks on the network.** [`RemoteCache::publish`]
//!   must be fire-and-forget (implementations queue and flush from a
//!   background thread), and [`RemoteCache::fetch`] must degrade to an
//!   instant [`RemoteLookup::Degraded`] whenever the server is dead,
//!   slow, or in reconnect backoff — a remote tier can make an analysis
//!   faster, never fail or stall it.
//! * **Verdicts travel as opaque blobs.** The cached-reduction encoding
//!   (`encode_verdict`/`decode_verdict`, the per-entry value layout
//!   of the v2 snapshot format) is private to this crate; transports
//!   and the server move bytes. An undecodable blob is treated as a
//!   miss, never an error — the local search simply runs.
//! * **Validity rides the v2 per-predicate fingerprints.** Fetched and
//!   synced entries carry the `(predicate, fingerprint)` pairs they
//!   were computed under; [`EnvProfile::closure_matches`] re-runs the
//!   snapshot loader's transitive closure check before any foreign
//!   verdict is trusted ([`absorb_remote`]).

use crate::cache::{CacheKey, CachedReduction, CanonName, CanonVal, QueryScope};
use crate::{CheckCache, EnvProfile};
use sling_logic::Symbol;

/// A cache lookup in transportable form: the query scope minus the
/// environment tag (the transport knows which environment it serves)
/// plus the canonical query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteQuery<'a> {
    /// Search-node budget of the querying context.
    pub node_budget: u64,
    /// Unfolding slack of the querying context.
    pub fuel_slack: u32,
    /// Canonical text of the `(model, formula)` pair.
    pub text: &'a str,
}

/// Payload of a remote hit: the verdict blob (`None` is a memoized
/// *unsatisfiable* verdict, not an absence), the predicate names the
/// formula mentions, and the server-side generation stamp — entries
/// absorbed from a hit are warm, at that generation, so a later
/// anti-entropy sync or snapshot merge orders against them correctly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteHit {
    /// Encoded `CachedReduction`, or `None` for a cached "no".
    pub value: Option<Vec<u8>>,
    /// Direct predicate mentions (persistence metadata).
    pub preds: Vec<String>,
    /// Server generation stamp.
    pub generation: u64,
}

/// Outcome of one remote lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteLookup {
    /// The server had a valid entry for this query.
    Hit(RemoteHit),
    /// The server answered and had nothing.
    Miss,
    /// The tier is degraded (server unreachable, round trip failed, or
    /// reconnect backoff pending) — the analysis continues local-only.
    Degraded,
}

/// A freshly computed verdict on its way to the server. Mirrors
/// [`RemoteHit`] plus the query key fields; the transport attaches the
/// per-predicate fingerprints and the server stamps the generation on
/// arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemotePublish {
    /// Search-node budget the verdict was computed under.
    pub node_budget: u64,
    /// Unfolding slack the verdict was computed under.
    pub fuel_slack: u32,
    /// Canonical text of the `(model, formula)` pair.
    pub text: String,
    /// Encoded `CachedReduction`, or `None` for a cached "no".
    pub value: Option<Vec<u8>>,
    /// Direct predicate mentions.
    pub preds: Vec<String>,
}

/// A remote entry in full transportable form — what `sync` (anti
/// entropy) and `put` move: key fields, verdict blob, the
/// per-predicate fingerprints it was computed under, and its server
/// generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteEntry {
    /// Search-node budget of the entry's scope.
    pub node_budget: u64,
    /// Unfolding slack of the entry's scope.
    pub fuel_slack: u32,
    /// Canonical text of the `(model, formula)` pair.
    pub text: String,
    /// Encoded `CachedReduction`, or `None` for a cached "no".
    pub value: Option<Vec<u8>>,
    /// `(predicate, fingerprint)` pairs for the entry's direct
    /// mentions, from the publishing engine's [`EnvProfile`].
    pub preds: Vec<(String, u64)>,
    /// Server generation stamp (0 on entries not yet stamped).
    pub generation: u64,
}

/// The remote tier as the checker sees it. Implementations must be
/// cheap to consult: `fetch` returns [`RemoteLookup::Degraded`]
/// immediately when the server is unavailable, and `publish` queues
/// without blocking (dropping entries under backpressure is fine —
/// the tier is an accelerator, not a store of record).
pub trait RemoteCache: Send + Sync + std::fmt::Debug {
    /// Consults the server for a query that missed the local cache.
    fn fetch(&self, query: &RemoteQuery<'_>) -> RemoteLookup;

    /// Offers a freshly computed verdict for write-behind upload.
    fn publish(&self, entry: RemotePublish);
}

/// Folds remotely synced entries into a live cache: each entry is
/// validated against `profile` via the v2 per-predicate fingerprint
/// closure check, re-keyed under the local environment tag, and merged
/// newest-generation-wins (live-computed entries always survive).
/// Returns how many entries were actually retained. Entries with
/// undecodable blobs or foreign predicate closures are skipped, never
/// errors — anti-entropy is best-effort by design.
pub fn absorb_remote(cache: &CheckCache, profile: &EnvProfile, entries: &[RemoteEntry]) -> u64 {
    let mut merged = 0u64;
    for entry in entries {
        let names: Vec<String> = entry.preds.iter().map(|(name, _)| name.clone()).collect();
        if !profile.closure_matches(&entry.preds, &names) {
            continue;
        }
        let value = match &entry.value {
            None => None,
            Some(blob) => match decode_verdict(blob) {
                Some(red) => Some(red),
                None => continue,
            },
        };
        let scope = QueryScope {
            env_tag: profile.env_tag(),
            node_budget: entry.node_budget,
            fuel_slack: entry.fuel_slack,
        };
        let key = CacheKey::new(scope, entry.text.clone());
        let preds: Vec<Symbol> = names.iter().map(|name| Symbol::intern(name)).collect();
        if cache.merge_warm(key, value, &preds, entry.generation) {
            merged += 1;
        }
    }
    merged
}

/// Encodes a positive verdict as an opaque blob — the per-entry value
/// layout of the v2 snapshot format (residual ids, then tagged
/// instantiation pairs), little-endian throughout.
pub(crate) fn encode_verdict(red: &CachedReduction) -> Vec<u8> {
    fn u32s(out: &mut Vec<u8>, n: u32) {
        out.extend_from_slice(&n.to_le_bytes());
    }
    fn u64s(out: &mut Vec<u8>, n: u64) {
        out.extend_from_slice(&n.to_le_bytes());
    }
    fn bytes(out: &mut Vec<u8>, b: &[u8]) {
        u32s(out, b.len() as u32);
        out.extend_from_slice(b);
    }
    let mut out = Vec::with_capacity(16 + 4 * red.residual.len() + 16 * red.inst.len());
    u32s(&mut out, red.residual.len() as u32);
    for id in &red.residual {
        u32s(&mut out, *id);
    }
    u32s(&mut out, red.inst.len() as u32);
    for (name, val) in &red.inst {
        match name {
            CanonName::Binder(i) => {
                out.push(0);
                u32s(&mut out, *i);
            }
            CanonName::Free(sym) => {
                out.push(1);
                bytes(&mut out, sym.as_str().as_bytes());
            }
        }
        match val {
            CanonVal::Nil => out.push(0),
            CanonVal::Int(k) => {
                out.push(1);
                u64s(&mut out, *k as u64);
            }
            CanonVal::InHeap(id) => {
                out.push(2);
                u32s(&mut out, *id);
            }
            CanonVal::Dangling(id) => {
                out.push(3);
                u32s(&mut out, *id);
            }
        }
    }
    out
}

/// Decodes a verdict blob; `None` on any structural problem (foreign
/// version, truncation, bad tags) — callers treat that as a miss.
pub(crate) fn decode_verdict(blob: &[u8]) -> Option<CachedReduction> {
    struct R<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl<'a> R<'a> {
        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let slice = self.bytes.get(self.pos..end)?;
            self.pos = end;
            Some(slice)
        }
        fn u8(&mut self) -> Option<u8> {
            Some(self.take(1)?[0])
        }
        fn u32(&mut self) -> Option<u32> {
            Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
        }
        fn u64(&mut self) -> Option<u64> {
            Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
        }
        fn string(&mut self) -> Option<String> {
            let len = self.u32()? as usize;
            String::from_utf8(self.take(len)?.to_vec()).ok()
        }
    }
    let mut r = R {
        bytes: blob,
        pos: 0,
    };
    let n = r.u32()? as usize;
    let mut residual = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        residual.push(r.u32()?);
    }
    let n = r.u32()? as usize;
    let mut inst = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = match r.u8()? {
            0 => CanonName::Binder(r.u32()?),
            1 => CanonName::Free(Symbol::intern(&r.string()?)),
            _ => return None,
        };
        let val = match r.u8()? {
            0 => CanonVal::Nil,
            1 => CanonVal::Int(r.u64()? as i64),
            2 => CanonVal::InHeap(r.u32()?),
            3 => CanonVal::Dangling(r.u32()?),
            _ => return None,
        };
        inst.push((name, val));
    }
    if r.pos != blob.len() {
        return None;
    }
    Some(CachedReduction { residual, inst })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict() -> CachedReduction {
        CachedReduction {
            residual: vec![3, 1, 4],
            inst: vec![
                (CanonName::Binder(0), CanonVal::Nil),
                (CanonName::Binder(1), CanonVal::Int(-7)),
                (CanonName::Free(Symbol::intern("tmp")), CanonVal::InHeap(2)),
                (CanonName::Binder(2), CanonVal::Dangling(9)),
            ],
        }
    }

    #[test]
    fn verdict_blobs_round_trip() {
        let red = verdict();
        assert_eq!(decode_verdict(&encode_verdict(&red)), Some(red));
        let empty = CachedReduction {
            residual: Vec::new(),
            inst: Vec::new(),
        };
        assert_eq!(decode_verdict(&encode_verdict(&empty)), Some(empty));
    }

    #[test]
    fn mangled_blobs_decode_to_none_never_panic() {
        let blob = encode_verdict(&verdict());
        // Truncations at every prefix length.
        for len in 0..blob.len() {
            let _ = decode_verdict(&blob[..len]);
        }
        // Trailing garbage is rejected (a blob is exactly one verdict).
        let mut long = blob.clone();
        long.push(0);
        assert_eq!(decode_verdict(&long), None);
        // Corrupt tags.
        let mut bad = blob;
        *bad.last_mut().unwrap() = 0xff;
        let _ = decode_verdict(&bad);
        // Absurd length prefix on an empty tail.
        assert_eq!(decode_verdict(&u32::MAX.to_le_bytes()), None);
    }
}
