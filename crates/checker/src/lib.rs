//! Symbolic-heap separation-logic model checker.
//!
//! Decides the reduction `s, h ⊩ F ⇝ h', ι` (paper, Definition 2): whether
//! a stack-heap model satisfies a symbolic-heap formula up to a residual
//! heap `h'`, and with which instantiation `ι` of the formula's existential
//! variables. The residue and instantiation are exactly the information
//! SLING propagates between inference iterations (Algorithm 1).
//!
//! See the module docs of the `check` module source for the search strategy and
//! DESIGN.md for why a direct search replaces the paper's Z3 encoding.
//!
//! # Example
//!
//! Check the paper's `Fx = ∃u1,u2. dll(x, u1, u2, tmp)` against a concrete
//! two-cell doubly linked segment:
//!
//! ```
//! use sling_checker::CheckCtx;
//! use sling_logic::{parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv,
//!                   StructDef, Symbol, TypeEnv};
//! use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};
//!
//! let node = Symbol::intern("Node");
//! let mut types = TypeEnv::new();
//! types.define(StructDef {
//!     name: node,
//!     fields: vec![
//!         FieldDef { name: Symbol::intern("next"), ty: FieldTy::Ptr(node) },
//!         FieldDef { name: Symbol::intern("prev"), ty: FieldTy::Ptr(node) },
//!     ],
//! })?;
//! let mut preds = PredEnv::new();
//! for d in parse_predicates(
//!     "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
//!          emp & hd == nx & pr == tl
//!        | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
//! )? {
//!     preds.define(d)?;
//! }
//!
//! // x = 0x01; 0x01 <-> 0x02, then next(0x02) = 0x03 = tmp (not allocated here)
//! let (a, b, c) = (Loc::new(1), Loc::new(2), Loc::new(3));
//! let mut heap = Heap::new();
//! heap.insert(a, HeapCell::new(node, vec![Val::Addr(b), Val::Nil]));
//! heap.insert(b, HeapCell::new(node, vec![Val::Addr(c), Val::Addr(a)]));
//! let mut stack = Stack::new();
//! stack.bind(Symbol::intern("x"), Val::Addr(a));
//! stack.bind(Symbol::intern("tmp"), Val::Addr(c));
//! let model = StackHeapModel::new(stack, heap);
//!
//! let ctx = CheckCtx::new(&types, &preds);
//! let f = parse_formula("exists u1, u2. dll(x, u1, u2, tmp)")?;
//! let red = ctx.check(&model, &f).expect("formula should hold");
//! assert_eq!(red.covered, 2);
//! // ι maps u2 (the tail parameter) to 0x02.
//! assert_eq!(red.inst.get(Symbol::intern("u2")), Some(Val::Addr(b)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod check;
mod inst;
pub mod persist;
pub mod remote;
pub mod verify;

pub use cache::{env_fingerprint, CacheStats, CheckCache, EnvProfile, SHARD_COUNT};
pub use check::{CheckConfig, CheckCtx, Reduction};
pub use inst::Instantiation;
pub use persist::{MergeStats, PersistError};
pub use remote::{RemoteCache, RemoteEntry, RemoteHit, RemoteLookup, RemotePublish, RemoteQuery};
pub use verify::{Obligation, Prover, UnfoldProver, Verdict, VerifyConfig};
