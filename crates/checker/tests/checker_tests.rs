//! Integration tests for the model checker, built around the paper's §2
//! `concat` example (Figures 2–3) and a collection of standard structures.

use sling_checker::{CheckConfig, CheckCtx};
use sling_logic::{
    parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, Symbol, TypeEnv,
};
use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn l(n: u64) -> Loc {
    Loc::new(n)
}

fn node_types() -> TypeEnv {
    let mut types = TypeEnv::new();
    let node = sym("Node");
    types
        .define(StructDef {
            name: node,
            fields: vec![
                FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                },
                FieldDef {
                    name: sym("prev"),
                    ty: FieldTy::Ptr(node),
                },
            ],
        })
        .unwrap();
    let cell = sym("Cell");
    types
        .define(StructDef {
            name: cell,
            fields: vec![
                FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(cell),
                },
                FieldDef {
                    name: sym("data"),
                    ty: FieldTy::Int,
                },
            ],
        })
        .unwrap();
    let tree = sym("Tree");
    types
        .define(StructDef {
            name: tree,
            fields: vec![
                FieldDef {
                    name: sym("left"),
                    ty: FieldTy::Ptr(tree),
                },
                FieldDef {
                    name: sym("right"),
                    ty: FieldTy::Ptr(tree),
                },
            ],
        })
        .unwrap();
    types
}

fn preds() -> PredEnv {
    let mut env = PredEnv::new();
    for def in parse_predicates(
        r#"
        pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
            emp & hd == nx & pr == tl
          | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);

        pred sll(x: Cell*) :=
            emp & x == nil
          | exists u, d. x -> Cell{next: u, data: d} * sll(u);

        pred lseg(x: Cell*, y: Cell*) :=
            emp & x == y
          | exists u, d. x -> Cell{next: u, data: d} * lseg(u, y);

        pred srtl(x: Cell*, min: int) :=
            emp & x == nil
          | exists u, d. x -> Cell{next: u, data: d} * srtl(u, d) & min <= d;

        pred tree(t: Tree*) :=
            emp & t == nil
          | exists lf, rt. t -> Tree{left: lf, right: rt} * tree(lf) * tree(rt);
        "#,
    )
    .unwrap()
    {
        env.define(def).unwrap();
    }
    env
}

/// Doubly linked list cell.
fn dcell(next: Val, prev: Val) -> HeapCell {
    HeapCell::new(sym("Node"), vec![next, prev])
}

/// Singly linked list cell with data.
fn scell(next: Val, data: i64) -> HeapCell {
    HeapCell::new(sym("Cell"), vec![next, Val::Int(data)])
}

/// The Figure 2(a) heap: x = 0x01 -> 0x02 -> 0x03 (dll), y = 0x04 -> 0x05
/// (dll), both nil-terminated both ways.
fn fig2a() -> StackHeapModel {
    let mut heap = Heap::new();
    heap.insert(l(1), dcell(Val::Addr(l(2)), Val::Nil));
    heap.insert(l(2), dcell(Val::Addr(l(3)), Val::Addr(l(1))));
    heap.insert(l(3), dcell(Val::Nil, Val::Addr(l(2))));
    heap.insert(l(4), dcell(Val::Addr(l(5)), Val::Nil));
    heap.insert(l(5), dcell(Val::Nil, Val::Addr(l(4))));
    let mut stack = Stack::new();
    stack.bind(sym("x"), Val::Addr(l(1)));
    stack.bind(sym("y"), Val::Addr(l(4)));
    StackHeapModel::new(stack, heap)
}

/// The Figure 2(b) heap after the full concatenation: 0x01..0x05 one dll.
/// Stack for iteration `i` (1-based as in the figure).
fn fig2b(iteration: usize) -> StackHeapModel {
    let mut heap = Heap::new();
    heap.insert(l(1), dcell(Val::Addr(l(2)), Val::Nil));
    heap.insert(l(2), dcell(Val::Addr(l(3)), Val::Addr(l(1))));
    heap.insert(l(3), dcell(Val::Addr(l(4)), Val::Addr(l(2))));
    heap.insert(l(4), dcell(Val::Addr(l(5)), Val::Addr(l(3))));
    heap.insert(l(5), dcell(Val::Nil, Val::Addr(l(4))));
    let mut stack = Stack::new();
    let xi = iteration as u64;
    stack.bind(sym("x"), Val::Addr(l(xi)));
    stack.bind(sym("tmp"), Val::Addr(l(xi + 1)));
    stack.bind(sym("y"), Val::Addr(l(4)));
    stack.bind(sym("res"), Val::Addr(l(xi)));
    StackHeapModel::new(stack, heap)
}

#[test]
fn whole_heap_as_two_dlls() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2a();
    // The paper's precondition at L1.
    let f =
        parse_formula("exists u1, u2, u3, u4. dll(x, u1, u2, nil) * dll(y, u3, u4, nil)").unwrap();
    let red = ctx.check(&m, &f).expect("pre holds");
    assert_eq!(red.covered, 5);
    assert!(red.residual.is_empty());
    // The tails are instantiated: u2 = 0x03, u4 = 0x05.
    assert_eq!(red.inst.get(sym("u2")), Some(Val::Addr(l(3))));
    assert_eq!(red.inst.get(sym("u4")), Some(Val::Addr(l(5))));
    // The previous pointers are nil: u1 = u3 = nil.
    assert_eq!(red.inst.get(sym("u1")), Some(Val::Nil));
    assert_eq!(red.inst.get(sym("u3")), Some(Val::Nil));
}

#[test]
fn dll_segment_with_residue() {
    // Fx = ∃u1,u2. dll(x, u1, u2, tmp) over the full Figure 2(b) heap at
    // iteration 1: covers only cell 0x01; cells 0x02..0x05 are residue.
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2b(1);
    let f = parse_formula("exists u1, u2. dll(x, u1, u2, tmp)").unwrap();
    let red = ctx.check(&m, &f).expect("segment holds");
    assert_eq!(red.covered, 1);
    assert_eq!(red.residual.len(), 4);
    // tl is instantiated to x's cell itself (single-node segment).
    assert_eq!(red.inst.get(sym("u2")), Some(Val::Addr(l(1))));
}

#[test]
fn paper_final_invariant_checks_exactly() {
    // F'_L3 (§2.3): dll(x,u1,x,tmp) * dll(tmp,x,u3,y) * dll(y,u3,u5,nil)
    //               & res == x.
    // At iteration i the cells before x (i-1 of them) are *residue*: they
    // are exactly the frame the §4.4 validation reasons about.
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    for it in 1..=3 {
        let m = fig2b(it);
        let f = parse_formula(
            "exists u1, u3, u5. dll(x, u1, x, tmp) * dll(tmp, x, u3, y) * \
             dll(y, u3, u5, nil) & res == x",
        )
        .unwrap();
        let red = ctx
            .check(&m, &f)
            .unwrap_or_else(|| panic!("F'_L3 fails at iteration {it}"));
        assert_eq!(
            red.residual.len(),
            it - 1,
            "wrong residue at iteration {it}"
        );
        assert_eq!(red.covered, 5 - (it - 1));
        // ι instantiates u3 to x's tail-side neighbour of y.
        assert_eq!(red.inst.get(sym("u3")), Some(Val::Addr(l(3))));
        assert_eq!(red.inst.get(sym("u5")), Some(Val::Addr(l(5))));
    }
}

#[test]
fn wrong_formula_rejected() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2a();
    // x and y are *separate* lists: a single dll from x to nil cannot
    // cover y's cells, and claiming y == x's tail is false.
    let f = parse_formula("dll(x, nil, y, nil)").unwrap();
    let red = ctx.check(&m, &f);
    // The formula holds only with y's cells in the residue, and the tail
    // parameter must be 0x03, not y. So tl == y forces failure.
    assert!(red.is_none());
}

#[test]
fn res_equality_filters() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2b(1);
    assert!(ctx
        .check(&m, &parse_formula("emp & res == x").unwrap())
        .is_some());
    assert!(ctx
        .check(&m, &parse_formula("emp & res == y").unwrap())
        .is_none());
}

#[test]
fn sll_and_lseg() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    // x = 1 -> 2 -> 3 -> nil with data 10, 20, 30; y = 3.
    let mut heap = Heap::new();
    heap.insert(l(1), scell(Val::Addr(l(2)), 10));
    heap.insert(l(2), scell(Val::Addr(l(3)), 20));
    heap.insert(l(3), scell(Val::Nil, 30));
    let mut stack = Stack::new();
    stack.bind(sym("x"), Val::Addr(l(1)));
    stack.bind(sym("y"), Val::Addr(l(3)));
    let m = StackHeapModel::new(stack, heap);

    assert!(ctx.holds_exact(&m, &parse_formula("sll(x)").unwrap()));
    // lseg(x, y) covers 2 cells; residue is y's cell.
    let red = ctx
        .check(&m, &parse_formula("lseg(x, y)").unwrap())
        .unwrap();
    assert_eq!(red.covered, 2);
    assert_eq!(red.residual.domain(), [l(3)].into_iter().collect());
    // lseg(x, y) * sll(y) covers everything.
    assert!(ctx.holds_exact(&m, &parse_formula("lseg(x, y) * sll(y)").unwrap()));
    // sll(y) alone leaves 2 cells.
    let red = ctx.check(&m, &parse_formula("sll(y)").unwrap()).unwrap();
    assert_eq!(red.covered, 1);
}

#[test]
fn sorted_list_data_constraints() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mk = |a: i64, b: i64, c: i64| {
        let mut heap = Heap::new();
        heap.insert(l(1), scell(Val::Addr(l(2)), a));
        heap.insert(l(2), scell(Val::Addr(l(3)), b));
        heap.insert(l(3), scell(Val::Nil, c));
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(l(1)));
        StackHeapModel::new(stack, heap)
    };
    let f = parse_formula("exists m. srtl(x, m)").unwrap();
    assert!(
        ctx.check(&mk(1, 2, 3), &f).is_some(),
        "sorted list accepted"
    );
    assert!(
        ctx.check(&mk(3, 2, 1), &f).is_none(),
        "unsorted list rejected"
    );
    assert!(
        ctx.check(&mk(2, 2, 2), &f).is_some(),
        "non-strict order accepted"
    );
}

#[test]
fn tree_shapes() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let t = sym("Tree");
    // Balanced 3-node tree.
    let mut heap = Heap::new();
    heap.insert(
        l(1),
        HeapCell::new(t, vec![Val::Addr(l(2)), Val::Addr(l(3))]),
    );
    heap.insert(l(2), HeapCell::new(t, vec![Val::Nil, Val::Nil]));
    heap.insert(l(3), HeapCell::new(t, vec![Val::Nil, Val::Nil]));
    let mut stack = Stack::new();
    stack.bind(sym("r"), Val::Addr(l(1)));
    let m = StackHeapModel::new(stack, heap);
    assert!(ctx.holds_exact(&m, &parse_formula("tree(r)").unwrap()));

    // A "tree" with sharing is NOT a tree (separation!): left and right
    // both point to 0x02.
    let mut heap = Heap::new();
    heap.insert(
        l(1),
        HeapCell::new(t, vec![Val::Addr(l(2)), Val::Addr(l(2))]),
    );
    heap.insert(l(2), HeapCell::new(t, vec![Val::Nil, Val::Nil]));
    let mut stack = Stack::new();
    stack.bind(sym("r"), Val::Addr(l(1)));
    let m = StackHeapModel::new(stack, heap);
    assert!(
        !ctx.holds_exact(&m, &parse_formula("tree(r)").unwrap()),
        "sharing must violate separation"
    );
}

#[test]
fn nil_list_is_base_case() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mut stack = Stack::new();
    stack.bind(sym("x"), Val::Nil);
    let m = StackHeapModel::new(stack, Heap::new());
    assert!(ctx.holds_exact(&m, &parse_formula("sll(x)").unwrap()));
    // But a points-to at nil never holds.
    assert!(ctx
        .check(&m, &parse_formula("x -> Cell{next: nil, data: d}").unwrap())
        .is_none());
}

#[test]
fn singleton_points_to_binds_fields() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mut heap = Heap::new();
    heap.insert(l(7), scell(Val::Addr(l(8)), 42));
    heap.insert(l(8), scell(Val::Nil, 43));
    let mut stack = Stack::new();
    stack.bind(sym("p"), Val::Addr(l(7)));
    let m = StackHeapModel::new(stack, heap);
    let f = parse_formula("exists n, d. p -> Cell{next: n, data: d}").unwrap();
    let red = ctx.check(&m, &f).unwrap();
    assert_eq!(red.covered, 1);
    assert_eq!(red.inst.get(sym("n")), Some(Val::Addr(l(8))));
    assert_eq!(red.inst.get(sym("d")), Some(Val::Int(42)));
}

#[test]
fn field_mismatch_rejected() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mut heap = Heap::new();
    heap.insert(l(7), scell(Val::Nil, 42));
    let mut stack = Stack::new();
    stack.bind(sym("p"), Val::Addr(l(7)));
    let m = StackHeapModel::new(stack, heap);
    assert!(ctx
        .check(
            &m,
            &parse_formula("p -> Cell{next: nil, data: 41}").unwrap()
        )
        .is_none());
    assert!(ctx
        .check(&m, &parse_formula("p -> Cell{next: p, data: 42}").unwrap())
        .is_none());
    assert!(ctx
        .check(
            &m,
            &parse_formula("p -> Cell{next: nil, data: 42}").unwrap()
        )
        .is_some());
}

#[test]
fn unbound_root_enumerates() {
    // ∃u1. dll(u1, nil, x, tmp): the *head* is existential; the checker
    // must discover u1 = 0x01 (the Algorithm 2 example in §4.2).
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2b(1);
    // x = 0x01, tmp = 0x02: dll from u1 with tail x and next tmp means the
    // one-cell segment [0x01].
    let f = parse_formula("exists u1. dll(u1, nil, x, tmp)").unwrap();
    let red = ctx.check(&m, &f).expect("head-existential segment holds");
    assert_eq!(red.inst.get(sym("u1")), Some(Val::Addr(l(1))));
    assert_eq!(red.covered, 1);
}

#[test]
fn circular_list_terminates() {
    // 1 -> 2 -> 1 cycle; sll must fail (never reaches nil) but terminate.
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mut heap = Heap::new();
    heap.insert(l(1), scell(Val::Addr(l(2)), 0));
    heap.insert(l(2), scell(Val::Addr(l(1)), 0));
    let mut stack = Stack::new();
    stack.bind(sym("x"), Val::Addr(l(1)));
    let m = StackHeapModel::new(stack, heap);
    assert!(ctx.check(&m, &parse_formula("sll(x)").unwrap()).is_none());
    // lseg(x, x) holds with empty coverage (base case x == x).
    let red = ctx
        .check(&m, &parse_formula("lseg(x, x)").unwrap())
        .unwrap();
    assert_eq!(red.covered, 2, "maximal match should go all the way around");
}

#[test]
fn budget_truncation_is_graceful() {
    let types = node_types();
    let preds = preds();
    let mut ctx = CheckCtx::new(&types, &preds);
    ctx.config = CheckConfig {
        node_budget: 1,
        fuel_slack: 4,
    };
    let m = fig2a();
    // With a 1-node budget the search gives up; must not panic.
    let _ = ctx.check(&m, &parse_formula("dll(x, nil, u, nil)").unwrap());
}

#[test]
fn pure_only_formulas() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2a();
    assert!(ctx
        .check(&m, &parse_formula("emp & x != y").unwrap())
        .is_some());
    assert!(ctx
        .check(&m, &parse_formula("emp & x == y").unwrap())
        .is_none());
    // Existential equated to a stack var gets instantiated.
    let red = ctx
        .check(&m, &parse_formula("exists a. emp & a == x").unwrap())
        .unwrap();
    assert_eq!(red.inst.get(sym("a")), Some(Val::Addr(l(1))));
}

#[test]
fn arithmetic_pure_atoms() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let mut stack = Stack::new();
    stack.bind(sym("n"), Val::Int(10));
    stack.bind(sym("m"), Val::Int(4));
    let m = StackHeapModel::new(stack, Heap::new());
    assert!(ctx
        .check(&m, &parse_formula("emp & n == m + 6").unwrap())
        .is_some());
    assert!(ctx
        .check(&m, &parse_formula("emp & n < m").unwrap())
        .is_none());
    assert!(ctx
        .check(&m, &parse_formula("emp & m <= n - 6").unwrap())
        .is_some());
    assert!(ctx
        .check(&m, &parse_formula("emp & n == (3 * m) - 2").unwrap())
        .is_some());
}

#[test]
fn disjunction_exact() {
    let types = node_types();
    let preds = preds();
    let ctx = CheckCtx::new(&types, &preds);
    let m = fig2a();
    let f1 = parse_formula("emp & x == nil").unwrap();
    let f2 =
        parse_formula("exists u1, u2, u3, u4. dll(x, u1, u2, nil) * dll(y, u3, u4, nil)").unwrap();
    assert!(ctx.holds_exact_disj(&m, &[f1.clone(), f2.clone()]));
    assert!(!ctx.holds_exact_disj(&m, &[f1]));
}
